type entry = {
  e_name : string;
  e_variables : float array;
  e_cycles : int;
  e_instructions : int;
  e_stall_cycles : int;
  e_measured_pj : float option;
}

type stats = { hits : int; misses : int; errors : int; stores : int }

type t = {
  c_dir : string option;
  c_mem : (string, entry) Hashtbl.t;
  mutable c_stats : stats;
}

module M = struct
  let hits = lazy (Obs.Metrics.counter "explore_cache_hits_total")
  let misses = lazy (Obs.Metrics.counter "explore_cache_misses_total")
  let errors = lazy (Obs.Metrics.counter "explore_cache_errors_total")
  let stores = lazy (Obs.Metrics.counter "explore_cache_stores_total")
end

let create ?dir () =
  { c_dir = dir; c_mem = Hashtbl.create 64;
    c_stats = { hits = 0; misses = 0; errors = 0; stores = 0 } }

let dir t = t.c_dir

let stats t = t.c_stats

let diff a b =
  { hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    errors = a.errors - b.errors;
    stores = a.stores - b.stores }

(* The key covers exactly what the cached computation reads: the
   assembled program (code words, entry point, initialised image — not
   the unassembled source, whose labels and symbol table carry no
   semantics), the extension specification, the processor configuration,
   the C(W) tag and whether the reference estimator observes the run.
   Marshal gives a canonical byte string for these pure immutable
   values; MD5 of that is the content address. *)
let key ?(complexity_tag = "default") ?(with_reference = false)
    ~(config : Sim.Config.t) (c : Extract.case) =
  let asm = c.Extract.asm in
  let code =
    Array.map
      (fun (s : Isa.Program.slot) -> (s.Isa.Program.addr, s.Isa.Program.word))
      asm.Isa.Program.code
  in
  let spec = Option.map Tie.Compile.spec c.Extract.extension in
  let payload =
    ( "xenergy-eval-cache", 1, complexity_tag, with_reference, code,
      asm.Isa.Program.entry, asm.Isa.Program.image, spec, config )
  in
  Digest.to_hex (Digest.string (Marshal.to_string payload []))

(* --- On-disk format ------------------------------------------------------ *)

(* %.17g prints enough digits that float_of_string recovers the exact
   bits: a warm (disk) sweep is bit-identical to the cold one. *)
let float17 x = Printf.sprintf "%.17g" x

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_to_json ~key:k e =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"format\": \"xenergy-eval-cache\",\n";
  Buffer.add_string b "  \"version\": 1,\n";
  Printf.bprintf b "  \"key\": \"%s\",\n" k;
  Printf.bprintf b "  \"name\": \"%s\",\n" (json_escape e.e_name);
  Printf.bprintf b "  \"cycles\": %d,\n" e.e_cycles;
  Printf.bprintf b "  \"instructions\": %d,\n" e.e_instructions;
  Printf.bprintf b "  \"stall_cycles\": %d,\n" e.e_stall_cycles;
  Printf.bprintf b "  \"measured_pj\": %s,\n"
    (match e.e_measured_pj with None -> "null" | Some x -> float17 x);
  Printf.bprintf b "  \"variables\": [%s]\n"
    (String.concat ", "
       (Array.to_list (Array.map float17 e.e_variables)));
  Buffer.add_string b "}\n";
  Buffer.contents b

let entry_of_json ~expect_key s =
  let j = Obs.Json.parse s in
  let str f = Obs.Json.(to_string (member f j)) in
  let int f = Obs.Json.(to_int (member f j)) in
  if str "format" <> "xenergy-eval-cache" then failwith "cache: bad format";
  if int "version" <> 1 then failwith "cache: unsupported version";
  if str "key" <> expect_key then failwith "cache: key mismatch";
  let variables =
    Obs.Json.(to_list (member "variables" j))
    |> List.map Obs.Json.to_float |> Array.of_list
  in
  if Array.length variables <> Variables.count then
    failwith "cache: wrong variable count";
  let measured_pj =
    match Obs.Json.member "measured_pj" j with
    | Obs.Json.Null -> None
    | v -> Some (Obs.Json.to_float v)
  in
  { e_name = str "name";
    e_variables = variables;
    e_cycles = int "cycles";
    e_instructions = int "instructions";
    e_stall_cycles = int "stall_cycles";
    e_measured_pj = measured_pj }

(* --- Lookup / store ------------------------------------------------------ *)

let path_of t k =
  Option.map (fun d -> Filename.concat d (k ^ ".json")) t.c_dir

let count_error t =
  t.c_stats <- { t.c_stats with errors = t.c_stats.errors + 1 };
  Obs.Metrics.inc (Lazy.force M.errors);
  Obs.Trace.instant ~cat:"cache" "cache:error"

let load_disk t k =
  match path_of t k with
  | None -> None
  | Some path ->
    if not (Sys.file_exists path) then None
    else begin
      match
        entry_of_json ~expect_key:k
          (In_channel.with_open_text path In_channel.input_all)
      with
      | e -> Some e
      | exception _ ->
        (* Corrupted, truncated or foreign file: recompute rather than
           fail, and leave a trail in the error counter. *)
        count_error t;
        None
    end

let find t k =
  let hit e =
    t.c_stats <- { t.c_stats with hits = t.c_stats.hits + 1 };
    Obs.Metrics.inc (Lazy.force M.hits);
    Obs.Trace.instant ~cat:"cache" "cache:hit"
      ~args:[ ("name", Obs.Trace.S e.e_name) ];
    Some e
  in
  match Hashtbl.find_opt t.c_mem k with
  | Some e -> hit e
  | None -> (
    match load_disk t k with
    | Some e ->
      Hashtbl.replace t.c_mem k e;
      hit e
    | None ->
      t.c_stats <- { t.c_stats with misses = t.c_stats.misses + 1 };
      Obs.Metrics.inc (Lazy.force M.misses);
      None)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ()
  end

let store_disk t k e =
  match path_of t k with
  | None -> ()
  | Some path ->
    (* Atomic publication: never leave a torn file for a concurrent or
       later reader to trip over. *)
    (try
       Option.iter mkdir_p t.c_dir;
       let tmp =
         Filename.temp_file ~temp_dir:(Option.get t.c_dir) "cache" ".tmp"
       in
       Out_channel.with_open_text tmp (fun oc ->
           Out_channel.output_string oc (entry_to_json ~key:k e));
       Sys.rename tmp path
     with Sys_error _ | Unix.Unix_error _ | Invalid_argument _ ->
       count_error t)

let store t k e =
  Hashtbl.replace t.c_mem k e;
  store_disk t k e;
  t.c_stats <- { t.c_stats with stores = t.c_stats.stores + 1 };
  Obs.Metrics.inc (Lazy.force M.stores)
