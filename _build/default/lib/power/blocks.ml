type params = {
  clock_tree : float;
  pipeline_base : float;
  pipeline_per_toggle : float;   (* per pipeline-register net toggle *)
  cache_decode_per_toggle : float;
  cache_tag_per_toggle : float;
  cache_array_per_toggle : float;
  regfile_decoder_per_toggle : float;
  stall_cycle : float;
  fetch_decode : float;
  fetch_bus_per_toggle : float;
  icache_access : float;
  icache_miss : float;
  dcache_access : float;
  dcache_miss : float;
  uncached_access : float;
  regfile_read : float;
  regfile_write : float;
  alu_per_toggle : float;
  shifter_per_toggle : float;
  mult_per_toggle : float;
  operand_bus_per_toggle : float;
  result_bus_per_toggle : float;
  branch_unit : float;
  taken_flush : float;
  interlock_cycle : float;
  window_op : float;
  custom_active : Tie.Component.category -> float;
  custom_idle_fraction : float;
  custom_data_swing : float;
}

let paper_table1_custom =
  [ (Tie.Component.Multiplier, 152.0);
    (Tie.Component.Adder, 70.0);
    (Tie.Component.Logic, 12.0);
    (Tie.Component.Shifter, 377.0);
    (Tie.Component.Custom_register, 177.0);
    (Tie.Component.Tie_mult, 165.0);
    (Tie.Component.Tie_mac, 190.0);
    (Tie.Component.Tie_add, 69.0);
    (Tie.Component.Tie_csa, 37.0);
    (Tie.Component.Table, 27.0) ]

let custom_active_default cat = List.assoc cat paper_table1_custom

let default =
  { clock_tree = 60.0;
    pipeline_base = 45.0;
    pipeline_per_toggle = 0.1;
    cache_decode_per_toggle = 1.0;
    cache_tag_per_toggle = 0.35;
    cache_array_per_toggle = 0.12;
    regfile_decoder_per_toggle = 1.5;
    stall_cycle = 25.0;
    fetch_decode = 50.0;
    fetch_bus_per_toggle = 1.1;
    icache_access = 45.0;
    icache_miss = 1600.0;
    dcache_access = 50.0;
    dcache_miss = 1700.0;
    uncached_access = 700.0;
    regfile_read = 25.0;
    regfile_write = 35.0;
    alu_per_toggle = 0.7;
    shifter_per_toggle = 2.0;
    mult_per_toggle = 0.75;
    operand_bus_per_toggle = 1.0;
    result_bus_per_toggle = 1.0;
    branch_unit = 18.0;
    taken_flush = 70.0;
    interlock_cycle = 18.0;
    window_op = 60.0;
    custom_active = custom_active_default;
    custom_idle_fraction = 0.22;
    custom_data_swing = 0.3 }

(* Constants below are the measured mean toggle counts of the Gates
   models under uniformly random operand streams (see the calibration
   note in DESIGN.md): adders toggle ~2 nets per bit, array multipliers
   ~0.64 w^2, barrel shifters ~2.2 per bit, logic planes and registers
   ~0.5 per bit, tables ~w/2 plus decoder overhead. *)
let expected_toggles (c : Tie.Component.t) =
  let w = float_of_int c.Tie.Component.width in
  match c.Tie.Component.category with
  | Tie.Component.Multiplier | Tie.Component.Tie_mult
  | Tie.Component.Tie_mac ->
    0.64 *. w *. w
  | Tie.Component.Adder | Tie.Component.Tie_add | Tie.Component.Tie_csa ->
    2.0 *. w
  | Tie.Component.Logic -> w /. 2.0
  | Tie.Component.Shifter -> 2.2 *. w
  | Tie.Component.Custom_register -> w /. 2.0
  | Tie.Component.Table -> (w /. 2.0) +. 6.0
