(** Location profiles: integer-keyed hotspot accumulators and interned
    call-stack aggregation.

    The module is deliberately ISA-agnostic — keys are plain integers
    (the simulator layer maps program counters to instruction slots or
    basic blocks) and stack frames are strings.  [Core.Profiler] builds
    the per-block/per-line profiles of a simulated program on top of
    these accumulators; nothing here allocates per event beyond hashing,
    so an attached profiler stays within the observer-cost budget and a
    detached one costs nothing at all. *)

type slot = {
  mutable hits : int;            (** events recorded against the key *)
  mutable cycles : int;
  mutable stall_cycles : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable energy_pj : float;
}

type t

val create : unit -> t

val record :
  t ->
  ?stall_cycles:int ->
  ?icache_miss:bool ->
  ?dcache_miss:bool ->
  ?energy_pj:float ->
  cycles:int ->
  int ->
  unit
(** [record t ~cycles key] folds one event into [key]'s slot, creating
    the slot on first sight. *)

val slot_for : t -> int -> slot
(** The slot for a key, created zeroed on first sight.  Hot-path callers
    may hold on to the returned slot and bump its fields directly,
    skipping the per-event hash lookup (and optional-argument boxing)
    that {!record} pays. *)

val find : t -> int -> slot option

val cardinal : t -> int
(** Number of distinct keys recorded. *)

val fold : (int -> slot -> 'a -> 'a) -> t -> 'a -> 'a

val totals : t -> slot
(** Fresh slot holding the column sums over every key — the conservation
    side of the profile (block rows must sum to the run totals). *)

val reset : t -> unit

(** Interned call-stack aggregation for flame-graph ("folded") output.

    Stacks are interned into a prefix tree: each distinct
    [(parent, frame)] pair becomes one node, so recording an event
    against the current stack is O(1) after an amortised child lookup.
    Producing Brendan-Gregg-style folded lines is then a walk over the
    touched nodes. *)
module Stacks : sig
  type stack

  val create : ?max_depth:int -> root:string -> unit -> stack
  (** [root] names the bottom frame (typically the program).  Frames
      pushed beyond [max_depth] (default 128) are counted but not
      interned; their events accumulate at the deepest retained node,
      and the matching pops unwind the overflow first. *)

  val push : stack -> string -> unit

  val pop : stack -> unit
  (** Popping at the root is a no-op (tolerates unmatched returns). *)

  val depth : stack -> int
  (** Current depth, root = 0, including capped frames. *)

  val record : stack -> cycles:int -> energy_pj:float -> unit
  (** Fold one event into the current stack. *)

  val record_leaf :
    stack -> frame:string -> cycles:int -> energy_pj:float -> unit
  (** Like {!record} but against a transient leaf [frame] (e.g. the
      basic block) below the current node, without changing the
      stack. *)

  val folded : stack -> (string * int * float) list
  (** [(";"-joined stack, cycles, energy_pj)] rows for every touched
      node, sorted by stack string — the flame-graph collapsed format.
      Cycle and energy totals over the rows equal the recorded totals. *)
end
