lib/sim/regfile.mli: Isa
