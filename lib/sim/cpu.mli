(** Instruction-set simulator.

    A cycle-approximate model of the base five-stage pipeline: one
    instruction retires per step, with a register scoreboard for
    data-dependency interlocks, instruction/data caches, an uncached
    region, taken-branch penalties, windowed calls and multi-cycle custom
    instructions.  Each retired instruction is published to the installed
    observers as an {!Event.t}. *)

exception Sim_error of string

type outcome =
  | Halted        (** the program executed [break] *)
  | Watchdog      (** [Config.max_cycles] exceeded *)

type observer = Event.t -> unit

type t

val create :
  ?config:Config.t ->
  ?extension:Tie.Compile.compiled ->
  Isa.Program.asm ->
  t

val add_observer : t -> observer -> unit
(** Register an observer.  Ordering contract: observers must be
    registered before the first {!step} — every observer sees the full
    event stream from the first retired instruction, in registration
    order.  Registering after execution has begun (any instruction
    retired, or the run already finished) would silently miss events,
    so it raises {!Sim_error} instead.
    @raise Sim_error if any instruction has already retired. *)

val step : t -> [ `Step of Event.t | `Done of outcome ]
(** Execute one instruction.  After [`Done] further calls return the same
    outcome. *)

val run : t -> outcome
(** Step until completion. *)

val run_threaded : ?covered:(Isa.Instr.t -> bool) -> t -> outcome
(** Run to completion on the threaded-code backend: the program is
    pre-decoded once into per-slot operation closures (operands, branch
    targets, immediates, latencies and custom-instruction lookups
    resolved at load time, straight-line runs delimited by
    {!Decoder.analyze}'s basic-block partition) and dispatched
    block-at-a-time.  Semantics are those of repeated {!step}: same
    cycles, same architectural state, and — when observers are
    installed — a bit-identical event stream.  When no observer is
    installed and metrics are off, events are not materialised at all;
    this is the backend's hot loop.

    [covered] restricts which instructions are compiled; anything it
    rejects (and anything whose static resolution fails) executes via
    the interpreter fallback, so coverage is a performance property,
    never a semantic one.  Intended for tests. *)

(** Static compilation counters for the threaded backend (see
    {!decode_stats}). *)
type decode_stats = {
  d_blocks : int;    (** basic blocks in the {!Decoder} partition *)
  d_ops : int;       (** instruction slots decoded *)
  d_compiled : int;  (** slots compiled to specialised closures; the
                         remainder run on the interpreter fallback *)
}

val decode_stats : ?covered:(Isa.Instr.t -> bool) -> ?fast_only:bool -> t -> decode_stats
(** Compile the program as {!run_threaded} would and report coverage
    without executing anything. *)

val clone : t -> t
(** Independent deep copy of the machine state (memory, caches,
    register file, scoreboard, TIE state, clocks) with an empty
    observer list; the backend equivalence checker uses it to run the
    same program twice from identical state. *)

val run_program :
  ?config:Config.t ->
  ?extension:Tie.Compile.compiled ->
  ?observers:observer list ->
  Isa.Program.asm ->
  t * outcome
(** Create, install observers, run. *)

val cycles : t -> int

val instructions : t -> int

val reg : t -> Isa.Reg.t -> int
(** Value in the current window. *)

val set_reg : t -> Isa.Reg.t -> int -> unit
(** Pre-load an argument register (before running). *)

val memory : t -> Memory.t

val icache : t -> Cache.t

val dcache : t -> Cache.t

val sar : t -> int

val tie_state : t -> Tie.Compile.state_store option

val config : t -> Config.t

val pc : t -> int
