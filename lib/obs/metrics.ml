let on = ref false
let set_enabled b = on := b
let enabled () = !on

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_help : string;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_help : string;
  h_bounds : float array;        (* upper bounds, increasing; +inf implicit *)
  h_counts : int array;          (* length = bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* Identity is (name, sorted labels); the registry keeps insertion order
   so reports are stable. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

(* Registration, multi-field histogram updates and snapshot reads are
   serialised so a snapshot never observes a torn bucket/sum/count
   triple while handler threads are observing.  Counter [inc] and gauge
   [set] stay lock-free: each is a single mutable-field store, and a
   snapshot reading a value one tick stale is harmless.  The mutex lives
   behind a ref so forked workers can replace it ([after_fork]) instead
   of inheriting one that another thread held at fork time. *)
let reg_lock = ref (Mutex.create ())

let after_fork () = reg_lock := Mutex.create ()

let locked f =
  let m = !reg_lock in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let key name labels =
  let labels = List.sort compare labels in
  String.concat "\x00"
    (name :: List.map (fun (k, v) -> k ^ "\x01" ^ v) labels)

let register k make =
  locked (fun () ->
      match Hashtbl.find_opt registry k with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.replace registry k i;
        order := k :: !order;
        i)

let counter ?(labels = []) ?(help = "") name =
  match
    register (key name labels) (fun () ->
        Counter { c_name = name; c_labels = labels; c_help = help; c_value = 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Metrics.counter: %s registered as another type" name)

let inc ?(by = 1) c = if !on then c.c_value <- c.c_value + by
let counter_value c = c.c_value

let gauge ?(labels = []) ?(help = "") name =
  match
    register (key name labels) (fun () ->
        Gauge { g_name = name; g_labels = labels; g_help = help; g_value = 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %s registered as another type" name)

let set g v = if !on then g.g_value <- v
let gauge_value g = g.g_value

let default_buckets =
  [| 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5; 1.0; 5.0; 30.0 |]

let histogram ?(labels = []) ?(help = "") ?(buckets = default_buckets) name =
  match
    register (key name labels) (fun () ->
        Histogram
          { h_name = name;
            h_labels = labels;
            h_help = help;
            h_bounds = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0 })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s registered as another type" name)

let observe h v =
  if !on then begin
    let n = Array.length h.h_bounds in
    let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
    let s = slot 0 in
    let m = !reg_lock in
    Mutex.lock m;
    h.h_counts.(s) <- h.h_counts.(s) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1;
    Mutex.unlock m
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* --- fork cooperation ---------------------------------------------------- *)

type snap_value =
  | S_counter of int
  | S_gauge of float
  | S_histogram of float array * int array * float * int

type snapshot = (string * (string * string) list * string * snap_value) list

let instruments () =
  List.rev_map (fun k -> Hashtbl.find registry k) !order

let snapshot () : snapshot =
  locked (fun () ->
      List.map
        (function
          | Counter c -> (c.c_name, c.c_labels, c.c_help, S_counter c.c_value)
          | Gauge g -> (g.g_name, g.g_labels, g.g_help, S_gauge g.g_value)
          | Histogram h ->
            ( h.h_name,
              h.h_labels,
              h.h_help,
              S_histogram (Array.copy h.h_bounds, Array.copy h.h_counts, h.h_sum,
                           h.h_count) ))
        (instruments ()))

let merge (s : snapshot) =
  List.iter
    (fun (name, labels, help, v) ->
      match v with
      | S_counter n ->
        let c = counter ~labels ~help name in
        locked (fun () -> c.c_value <- c.c_value + n)
      | S_gauge x ->
        let g = gauge ~labels ~help name in
        locked (fun () -> g.g_value <- x)
      | S_histogram (bounds, counts, sum, count) ->
        let h = histogram ~labels ~help ~buckets:bounds name in
        locked (fun () ->
            if Array.length h.h_counts = Array.length counts then
              Array.iteri
                (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n)
                counts;
            h.h_sum <- h.h_sum +. sum;
            h.h_count <- h.h_count + count))
    s

let snapshot_diff (later : snapshot) (earlier : snapshot) : snapshot =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, labels, _, v) -> Hashtbl.replace tbl (key name labels) v)
    earlier;
  List.map
    (fun (name, labels, help, v) ->
      let v' =
        match (v, Hashtbl.find_opt tbl (key name labels)) with
        | v, None -> v
        | S_counter a, Some (S_counter b) -> S_counter (a - b)
        | S_gauge a, Some _ -> S_gauge a
        | S_histogram (bounds, counts, sum, count),
          Some (S_histogram (bounds0, counts0, sum0, count0))
          when bounds = bounds0 && Array.length counts = Array.length counts0
          ->
          S_histogram
            ( bounds,
              Array.mapi (fun i c -> c - counts0.(i)) counts,
              sum -. sum0,
              count - count0 )
        (* Type or shape skew between the captures: the earlier value is
           not comparable, keep the later one whole. *)
        | v, Some _ -> v
      in
      (name, labels, help, v'))
    later

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> c.c_value <- 0
          | Gauge g -> g.g_value <- 0.0
          | Histogram h ->
            Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
            h.h_sum <- 0.0;
            h.h_count <- 0)
        registry)

(* --- output -------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers must be finite. *)
let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else if Float.is_nan x || Float.abs x = Float.infinity then "0"
  else Printf.sprintf "%.9g" x

let labels_json labels =
  String.concat ", "
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
       labels)

let instrument_json i =
  let head name labels help typ =
    Printf.sprintf
      "\"name\": \"%s\", \"type\": \"%s\", \"help\": \"%s\", \"labels\": {%s}"
      (json_escape name) typ (json_escape help) (labels_json labels)
  in
  match i with
  | Counter c ->
    Printf.sprintf "{%s, \"value\": %d}"
      (head c.c_name c.c_labels c.c_help "counter")
      c.c_value
  | Gauge g ->
    Printf.sprintf "{%s, \"value\": %s}"
      (head g.g_name g.g_labels g.g_help "gauge")
      (json_float g.g_value)
  | Histogram h ->
    let buckets =
      String.concat ", "
        (List.concat
           [ Array.to_list
               (Array.mapi
                  (fun i le ->
                    Printf.sprintf "{\"le\": %s, \"count\": %d}"
                      (json_float le) h.h_counts.(i))
                  h.h_bounds);
             [ Printf.sprintf "{\"le\": \"+inf\", \"count\": %d}"
                 h.h_counts.(Array.length h.h_bounds) ] ])
    in
    Printf.sprintf "{%s, \"sum\": %s, \"count\": %d, \"buckets\": [%s]}"
      (head h.h_name h.h_labels h.h_help "histogram")
      (json_float h.h_sum) h.h_count buckets

let to_json () =
  Printf.sprintf "{\n  \"metrics\": [\n    %s\n  ]\n}"
    (String.concat ",\n    " (List.map instrument_json (instruments ())))

let save path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json ());
      Out_channel.output_char oc '\n')

let pp ppf () =
  let label_str labels =
    if labels = [] then ""
    else
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun i ->
      match i with
      | Counter c ->
        Format.fprintf ppf "%s%s %d@," c.c_name (label_str c.c_labels) c.c_value
      | Gauge g ->
        Format.fprintf ppf "%s%s %g@," g.g_name (label_str g.g_labels) g.g_value
      | Histogram h ->
        Format.fprintf ppf "%s%s count %d sum %g@," h.h_name
          (label_str h.h_labels) h.h_count h.h_sum)
    (instruments ());
  Format.fprintf ppf "@]"
