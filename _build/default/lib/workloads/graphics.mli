(** Graphics benchmarks (Table II: Alphablend, Drawline). *)

val alphablend : unit -> Core.Extract.case
(** Per-pixel 8-bit alpha blend of two images via the [blend] custom
    instruction (alpha = 96). *)

val alphablend_result_address : int

val alphablend_inputs : unit -> int array * int array

val alphablend_alpha : int

val pixel_count : int

val drawline : unit -> Core.Extract.case
(** Bresenham line rasterisation into a 64x64 byte framebuffer, several
    lines; base ISA only. *)

val framebuffer_address : int

val framebuffer_dim : int

val drawline_endpoints : (int * int * int * int) list
(** The lines drawn, as (x0, y0, x1, y1); all octant-1 style with
    x1 > x0 and slope in [0, 1]. *)
