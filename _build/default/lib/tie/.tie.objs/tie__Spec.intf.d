lib/tie/spec.mli: Expr
