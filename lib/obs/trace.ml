type arg =
  | S of string
  | I of int
  | F of float
  | B of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let cur_tid = ref 0
let set_tid t = cur_tid := t
let tid () = !cur_tid

(* Buffer in reverse order; [events] reverses once.  Server handler
   threads and the main thread record concurrently, so the buffer is
   guarded by a mutex.  The mutex lives behind a ref so a freshly forked
   worker can swap in a clean one ([after_fork]) — a lock held by another
   thread at fork time would otherwise stay locked in the child forever. *)
let buf : event list ref = ref []
let buf_lock = ref (Mutex.create ())

let after_fork () = buf_lock := Mutex.create ()

let locked f =
  let m = !buf_lock in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let record e = locked (fun () -> buf := e :: !buf)

(* --- Request-scoped trace context ---------------------------------------- *)

type context = {
  trace_id : string;
  span_id : string;
  parent_id : string option;
}

(* Ids embed the pid so contexts minted after a fork (workers inherit the
   parent's Random state) cannot collide with the parent's. *)
let id_seed =
  ref (Random.State.make [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |])
let id_pid = ref (Unix.getpid ())
let id_n = ref 0

let new_id () =
  let pid = Unix.getpid () in
  if pid <> !id_pid then begin
    (* First id minted after a fork: reseed so siblings diverge. *)
    id_pid := pid;
    id_n := 0;
    id_seed := Random.State.make [| pid; int_of_float (Unix.gettimeofday () *. 1e6) |]
  end;
  incr id_n;
  Printf.sprintf "%04x%04x%08x" (pid land 0xffff) (!id_n land 0xffff)
    (Random.State.bits !id_seed land 0x3fffffff)

(* Thread-scoped context, same shape as [Log]'s correlation ids: an
   immutable assoc list keyed by an installable scope key (0 in
   single-threaded use; the server installs [Thread.id]).  Each key has a
   single writer, and readers only ever see a consistent list. *)
let ctx_key : (unit -> int) ref = ref (fun () -> 0)
let set_context_key f = ctx_key := f

let ctxs : (int * context) list ref = ref []

let set_context c =
  let k = !ctx_key () in
  let rest = List.filter (fun (k', _) -> k' <> k) !ctxs in
  ctxs := (match c with Some c -> (k, c) :: rest | None -> rest)

let context () = List.assoc_opt (!ctx_key ()) !ctxs

let with_context c f =
  let saved = context () in
  set_context (Some c);
  Fun.protect ~finally:(fun () -> set_context saved) f

let ctx_args ctx args =
  ("trace_id", S ctx.trace_id)
  :: ("span_id", S ctx.span_id)
  :: ((match ctx.parent_id with
      | Some p -> [ ("parent_id", S p) ]
      | None -> [])
     @ args)

let complete ?(cat = "") ?(args = []) ?tid:tid_opt ?ctx ~name ~ts ~dur () =
  if !on then
    record
      { ev_name = name;
        ev_cat = cat;
        ev_ph = 'X';
        ev_ts = ts;
        ev_dur = dur;
        ev_tid = Option.value tid_opt ~default:!cur_tid;
        ev_args = (match ctx with Some c -> ctx_args c args | None -> args) }

let with_span ?cat ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    match context () with
    | None ->
      let finish () = complete ~args ?cat ~name ~ts:t0 ~dur:(now_us () -. t0) () in
      (match f () with
      | v -> finish (); v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt)
    | Some parent ->
      (* Mint a child span under the ambient context so nested spans form
         a parent chain sharing one trace_id. *)
      let child =
        { trace_id = parent.trace_id;
          span_id = new_id ();
          parent_id = Some parent.span_id }
      in
      let finish () =
        complete ~args ?cat ~ctx:child ~name ~ts:t0 ~dur:(now_us () -. t0) ()
      in
      (match with_context child f with
      | v -> finish (); v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt)
  end

let instant ?(cat = "") ?(args = []) name =
  if !on then
    record
      { ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us ();
        ev_dur = 0.0;
        ev_tid = !cur_tid;
        ev_args =
          (match context () with Some c -> ctx_args c args | None -> args) }

let thread_name ~tid:t name =
  if !on then
    record
      { ev_name = "thread_name";
        ev_cat = "__metadata";
        ev_ph = 'M';
        ev_ts = 0.0;
        ev_dur = 0.0;
        ev_tid = t;
        ev_args = [ ("name", S name) ] }

let emit_all es =
  if !on then locked (fun () -> List.iter (fun e -> buf := e :: !buf) es)

let events () = locked (fun () -> List.rev !buf)
let clear () = locked (fun () -> buf := [])

let drain () =
  locked (fun () ->
      let es = List.rev !buf in
      buf := [];
      es)

(* --- Chrome trace-event JSON --------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f ->
    if Float.is_nan f || Float.abs f = Float.infinity then "0"
    else Printf.sprintf "%.6g" f
  | B b -> if b then "true" else "false"

let event_json e =
  let args =
    match e.ev_args with
    | [] -> ""
    | args ->
      Printf.sprintf ", \"args\": {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\": %s" (json_escape k) (arg_json v))
              args))
  in
  let dur =
    if e.ev_ph = 'X' then Printf.sprintf ", \"dur\": %.3f" e.ev_dur else ""
  in
  (* Instant events need a scope; thread scope matches the lane model. *)
  let scope = if e.ev_ph = 'i' then ", \"s\": \"t\"" else "" in
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %.3f%s, \
     \"pid\": 1, \"tid\": %d%s%s}"
    (json_escape e.ev_name)
    (json_escape (if e.ev_cat = "" then "xenergy" else e.ev_cat))
    e.ev_ph e.ev_ts dur e.ev_tid scope args

let to_json es =
  Printf.sprintf
    "{\n\"traceEvents\": [\n%s\n],\n\"displayTimeUnit\": \"ms\"\n}"
    (String.concat ",\n" (List.map event_json es))

let save path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json (events ()));
      Out_channel.output_char oc '\n')
