test/test_sim.ml: Alcotest Array Int32 Isa List QCheck QCheck_alcotest Sim Workloads
