(* Tests for the observability substrate: metrics registry, trace
   recorder (Chrome trace-event export), waveform accumulator and the
   minimal JSON parser used for round-trips.  Metrics and Trace are
   process-global, so every test restores the disabled default. *)

let check = Alcotest.check
let fail = Alcotest.fail

let with_obs f =
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ())
    f

(* --- Json ------------------------------------------------------------------ *)

let test_json_parse () =
  let j =
    Obs.Json.parse
      {|{"a": 1, "b": [true, false, null], "c": {"d": "x\n\"y\""}, "e": -2.5e2}|}
  in
  check (Alcotest.float 1e-9) "int" 1.0 Obs.Json.(to_float (member "a" j));
  check Alcotest.int "array length" 3
    (List.length Obs.Json.(to_list (member "b" j)));
  check Alcotest.string "escapes" "x\n\"y\""
    Obs.Json.(to_string (member "d" (member "c" j)));
  check (Alcotest.float 1e-9) "exponent" (-250.0)
    Obs.Json.(to_float (member "e" j));
  (match Obs.Json.parse "{\"a\": 1} garbage" with
   | exception Obs.Json.Parse_error _ -> ()
   | _ -> fail "trailing garbage accepted");
  match Obs.Json.parse "{\"a\":" with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> fail "truncated document accepted"

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_disabled_is_noop () =
  Obs.Metrics.set_enabled false;
  let c = Obs.Metrics.counter "test_noop_total" in
  let before = Obs.Metrics.counter_value c in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:10 c;
  check Alcotest.int "disabled counter unchanged" before
    (Obs.Metrics.counter_value c)

let test_metrics_counter_and_labels () =
  with_obs (fun () ->
      let a = Obs.Metrics.counter ~labels:[ ("k", "a") ] "test_lbl_total" in
      let b = Obs.Metrics.counter ~labels:[ ("k", "b") ] "test_lbl_total" in
      let v0a = Obs.Metrics.counter_value a in
      let v0b = Obs.Metrics.counter_value b in
      Obs.Metrics.inc a;
      Obs.Metrics.inc ~by:2 b;
      check Alcotest.int "label a" (v0a + 1) (Obs.Metrics.counter_value a);
      check Alcotest.int "label b" (v0b + 2) (Obs.Metrics.counter_value b);
      (* Same identity returns the same instrument. *)
      let a' = Obs.Metrics.counter ~labels:[ ("k", "a") ] "test_lbl_total" in
      Obs.Metrics.inc a';
      check Alcotest.int "same handle" (v0a + 2) (Obs.Metrics.counter_value a))

let test_metrics_histogram () =
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test_hist_seconds"
      in
      List.iter (Obs.Metrics.observe h) [ 0.5; 2.0; 5.0; 100.0 ];
      check Alcotest.int "count" 4 (Obs.Metrics.histogram_count h);
      check (Alcotest.float 1e-9) "sum" 107.5 (Obs.Metrics.histogram_sum h);
      (* The registry JSON parses and carries the bucket counts. *)
      let j = Obs.Json.parse (Obs.Metrics.to_json ()) in
      let metrics = Obs.Json.(to_list (member "metrics" j)) in
      let hj =
        List.find
          (fun m ->
            Obs.Json.(to_string (member "name" m)) = "test_hist_seconds")
          metrics
      in
      let counts =
        List.map
          (fun b -> Obs.Json.(to_int (member "count" b)))
          Obs.Json.(to_list (member "buckets" hj))
      in
      check (Alcotest.list Alcotest.int) "bucket counts" [ 1; 2; 1 ] counts)

let test_metrics_snapshot_merge () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test_merge_total" in
      Obs.Metrics.inc ~by:3 c;
      let snap = Obs.Metrics.snapshot () in
      Obs.Metrics.merge snap;
      (* Counters add on merge: 3 own + 3 from the snapshot. *)
      check Alcotest.int "merged counter" 6 (Obs.Metrics.counter_value c))

(* --- Trace ------------------------------------------------------------------ *)

let test_trace_disabled_records_nothing () =
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  let r = Obs.Trace.with_span "quiet" (fun () -> 42) in
  check Alcotest.int "value returned" 42 r;
  check Alcotest.int "no events" 0 (List.length (Obs.Trace.events ()))

let test_trace_spans_and_json () =
  with_obs (fun () ->
      let r =
        Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
            Obs.Trace.with_span ~cat:"t" "inner" (fun () -> ());
            7)
      in
      check Alcotest.int "value returned" 7 r;
      Obs.Trace.thread_name ~tid:3 "worker 3";
      (match Obs.Trace.with_span "raiser" (fun () -> failwith "x") with
       | exception Failure _ -> ()
       | _ -> fail "exception swallowed");
      let j = Obs.Json.parse (Obs.Trace.to_json (Obs.Trace.events ())) in
      let evs = Obs.Json.(to_list (member "traceEvents" j)) in
      let name e = Obs.Json.(to_string (member "name" e)) in
      let names = List.map name evs in
      List.iter
        (fun n ->
          if not (List.mem n names) then fail (Printf.sprintf "missing %s" n))
        [ "outer"; "inner"; "raiser"; "thread_name" ];
      (* Inner completes before outer, so it is recorded first; both carry
         durations and the default tid 0. *)
      let inner = List.find (fun e -> name e = "inner") evs in
      let outer = List.find (fun e -> name e = "outer") evs in
      check Alcotest.int "tid" 0 Obs.Json.(to_int (member "tid" inner));
      check Alcotest.bool "outer encloses inner" true
        (Obs.Json.(to_float (member "ts" outer))
         <= Obs.Json.(to_float (member "ts" inner))
         && Obs.Json.(to_float (member "dur" outer))
            >= Obs.Json.(to_float (member "dur" inner))))

let test_trace_emit_all_preserves_lanes () =
  with_obs (fun () ->
      Obs.Trace.set_tid 5;
      Obs.Trace.with_span "foreign" (fun () -> ());
      Obs.Trace.set_tid 0;
      let shipped = Obs.Trace.drain () in
      check Alcotest.int "drained" 1 (List.length shipped);
      check Alcotest.int "cleared" 0 (List.length (Obs.Trace.events ()));
      Obs.Trace.emit_all shipped;
      match Obs.Trace.events () with
      | [ e ] -> check Alcotest.int "lane kept" 5 e.Obs.Trace.ev_tid
      | l -> fail (Printf.sprintf "%d events after emit_all" (List.length l)))

(* --- Waveform ---------------------------------------------------------------- *)

let test_waveform_buckets () =
  let w = Obs.Waveform.create ~bucket_cycles:10 () in
  Obs.Waveform.add w ~cycle:0 ~energy_pj:1.0;
  Obs.Waveform.add w ~cycle:9 ~energy_pj:2.0;
  Obs.Waveform.add w ~cycle:10 ~energy_pj:4.0;
  Obs.Waveform.add w ~cycle:995 ~energy_pj:8.0;    (* forces growth *)
  check (Alcotest.float 1e-9) "total" 15.0 (Obs.Waveform.total_pj w);
  let bs = Obs.Waveform.buckets w in
  check Alcotest.int "buckets up to last touched" 100 (Array.length bs);
  check (Alcotest.float 1e-9) "bucket 0 accumulates" 3.0 (snd bs.(0));
  check (Alcotest.float 1e-9) "bucket 1" 4.0 (snd bs.(1));
  check (Alcotest.float 1e-9) "bucket 99" 8.0 (snd bs.(99));
  check Alcotest.int "bucket start cycle" 990 (fst bs.(99));
  let j = Obs.Json.parse (Obs.Waveform.to_json w) in
  check Alcotest.int "json bucket width" 10
    Obs.Json.(to_int (member "bucket_cycles" j));
  check Alcotest.string "unit stated" "pJ"
    Obs.Json.(to_string (member "unit" j))

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "parse" `Quick test_json_parse ] );
      ( "metrics",
        [ Alcotest.test_case "disabled no-op" `Quick
            test_metrics_disabled_is_noop;
          Alcotest.test_case "counters and labels" `Quick
            test_metrics_counter_and_labels;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "snapshot merge" `Quick
            test_metrics_snapshot_merge ] );
      ( "trace",
        [ Alcotest.test_case "disabled no-op" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "spans + json" `Quick test_trace_spans_and_json;
          Alcotest.test_case "emit_all lanes" `Quick
            test_trace_emit_all_preserves_lanes ] );
      ( "waveform",
        [ Alcotest.test_case "buckets" `Quick test_waveform_buckets ] ) ]
