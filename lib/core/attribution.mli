(** Energy attribution: decompose a workload's macro-model energy across
    the 21 model variables, plus a cycle-bucketed power waveform.

    The macro-model is linear — [E = sum_i c_i * x_i] — so per-variable
    attribution is exact: each variable's contribution is its coefficient
    times its extracted count, and the contributions sum to the
    workload's total estimated energy to rounding error.  The engine is
    an {!Sim.Event} observer (the same stream the estimators use): it
    folds the statistics and resource observers incrementally and bins
    each instruction's marginal model energy by retirement cycle, which
    yields the power-over-time waveform per-component models cannot
    provide on their own. *)

type row = {
  variable : Variables.id;
  count : float;             (** extracted variable value *)
  coefficient_pj : float;    (** fitted energy coefficient, pJ *)
  energy_pj : float;         (** [count *. coefficient_pj] *)
  share : float;             (** fraction of the total (0 when total = 0) *)
}

type breakdown = {
  workload : string;
  total_pj : float;          (** macro-model energy of the workload *)
  rows : row list;           (** one per variable, descending energy *)
  waveform : Obs.Waveform.t; (** model energy binned by retirement cycle *)
  cycles : int;
  instructions : int;
}

val decompose : Template.model -> float array -> row list
(** [decompose model vars] — the per-variable rows (descending energy)
    for an already-extracted variable vector.  The model is linear, so
    this is exact and needs no simulation: [Explore] explains Pareto
    frontier candidates from cached vectors with this, at zero
    simulation cost. *)

type t
(** An attribution engine usable as a simulation observer. *)

val create :
  ?bucket_cycles:int ->
  ?complexity:(Tie.Component.t -> float) ->
  ?extension:Tie.Compile.compiled ->
  config:Sim.Config.t ->
  Template.model ->
  t
(** An engine for one workload.  [bucket_cycles] sets the waveform bin
    width (default 64); [complexity] and [extension] must match the ones
    the model's variables will be extracted with, or the decomposition
    will not match the estimate. *)

val observer : t -> Sim.Cpu.observer
(** The engine as a simulation observer; attach it to the run being
    attributed. *)

val observe : t -> Sim.Event.t -> unit
(** Fold one event directly (what {!observer} does per event). *)

val observe_marginal : t -> Sim.Event.t -> float
(** Like {!observe}, also returning the event's marginal model energy
    (pJ) — the telescoping increment the waveform bins.  Saves hot-path
    callers two {!energy_so_far} reads per event. *)

val energy_so_far : t -> float
(** Running model energy after the events observed so far.  The
    difference across one {!observe} is that instruction's marginal
    energy — the telescoping sum the waveform is built from, and what
    {!Profiler} folds into per-block energy. *)

val finish : t -> name:string -> cycles:int -> instructions:int -> breakdown
(** Close the books after the observed simulation: compute the rows from
    the folded state and return the breakdown.  [cycles] and
    [instructions] come from the simulator outcome. *)

val run :
  ?config:Sim.Config.t ->
  ?bucket_cycles:int ->
  ?complexity:(Tie.Component.t -> float) ->
  ?observers:Sim.Cpu.observer list ->
  Template.model ->
  Extract.case ->
  breakdown
(** Simulate the case once with the attribution engine (and any extra
    [observers], e.g. the reference estimator for a side-by-side
    comparison) attached. *)

val check_sum : breakdown -> float
(** Relative gap |sum rows - total| / max(|total|, 1): the attribution
    invariant tests assert this is below 1e-6. *)

val pp : Format.formatter -> breakdown -> unit
(** Per-variable table (uJ alongside pJ) followed by the waveform. *)

val to_json : breakdown -> string
(** Units are explicit: all energies are picojoules. *)
