(** Length-prefixed JSON framing — the [xenergy serve] wire format.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON text.  The length prefix keeps the codec trivial on
    both sides (no streaming JSON parser, no delimiter escaping) while
    still allowing multi-megabyte batch responses; {!max_frame_bytes}
    bounds a single frame so a corrupt or hostile peer cannot make the
    reader allocate unboundedly.

    Reads are deadline-guarded: every byte is waited for with [select]
    against an absolute [deadline], and [EINTR] is retried, so a
    wedged or malicious peer can never hang the reader — the same
    discipline as the hardened {!Core.Parallel} pipe reads. *)

exception Frame_error of string
(** Malformed traffic: an oversized length prefix, a frame truncated by
    the peer, or a read that exceeded its deadline.  Connection-fatal —
    the caller should drop the connection — but never process-fatal. *)

val max_frame_bytes : int
(** Upper bound on a single frame's payload (16 MiB). *)

val write_frame : ?deadline:float -> Unix.file_descr -> string -> unit
(** Write one frame (length prefix + payload), retrying interrupted
    writes.  [deadline] is an absolute [Unix.gettimeofday]-clock time:
    every chunk is select-guarded against it, symmetric with
    {!read_frame}'s read deadlines, so a peer that stops reading (its
    socket buffer full) cannot wedge the writer.  For the deadline to
    bound a single large [write] too, put the fd in non-blocking mode
    ([Unix.set_nonblock]) — the writer retries [EAGAIN] through
    [select]; the [xenergy serve] connection handler does exactly
    this.  Without [deadline] the write blocks, as a CLI client wants.
    @raise Frame_error when the payload exceeds {!max_frame_bytes} or
    the deadline passes mid-frame.
    @raise Unix.Unix_error when the peer is gone (e.g. [EPIPE]). *)

val read_frame : ?deadline:float -> Unix.file_descr -> string option
(** Read one frame.  [None] on a clean end-of-stream (the peer closed
    before starting a frame); [deadline] is an absolute
    [Unix.gettimeofday]-clock time after which the read gives up.
    @raise Frame_error on an oversized or truncated frame, or when the
    deadline passes mid-frame. *)

val json_to_string : Obs.Json.t -> string
(** Print a JSON value in the repository's house style: compact, keys
    in construction order, non-finite floats as [null] (they have no
    JSON encoding), integral floats without a fractional part and
    everything else with enough digits to round-trip through
    {!Obs.Json.parse} bit-exactly. *)
