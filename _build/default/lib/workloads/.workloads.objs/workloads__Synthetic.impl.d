lib/workloads/synthetic.ml: Array Core Data Isa List Printf Prng Sim Tie Tie_lib Wutil
