(** Lexer for the Tiny-C front end.

    The paper's characterization and application programs are "Tensilica
    benchmarks written in C [that] instantiate TIE instructions intrinsic
    in their description"; this front end plays the role of the
    GNU-based cross-compiler in that flow. *)

type token =
  | Int_lit of int
  | Ident of string
  | Kw_int | Kw_if | Kw_else | Kw_while | Kw_for | Kw_return
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Shl | Shr
  | Lt | Gt | Le | Ge | Eq_eq | Bang_eq
  | Amp_amp | Pipe_pipe | Bang
  | Assign
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Comma | Semicolon
  | Eof

exception Lex_error of int * string
(** Line number and message. *)

val tokenize : string -> (token * int) list
(** All tokens with their line numbers, ending with [Eof].
    Comments ([//] to end of line and [/*]...[*/]) are skipped.
    Integer literals may be decimal, [0x] hex or ['c'] characters. *)

val token_name : token -> string
