lib/core/resource.mli: Sim Tie
