lib/workloads/c_apps.mli: Core
