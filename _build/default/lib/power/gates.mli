(** Gate-level switching models for datapath units.

    The reference estimator simulates the synthesized structure of each
    datapath unit — carry chains, partial-product arrays, barrel-shifter
    stages — and counts net toggles between consecutive evaluations.
    This is what makes the reference estimator slow and data-dependent,
    standing in for the commercial RTL power estimation of the paper. *)

type adder_state
(** Internal nets of a ripple-structured adder (sum and carry vectors). *)

val adder_create : int -> adder_state
(** [adder_create width] *)

val adder_eval : adder_state -> int -> int -> int
(** [adder_eval st a b] evaluates the carry chain and returns the number
    of net toggles relative to the previous evaluation. *)

type mult_state
(** Partial-product rows and compression-tree levels of an array
    multiplier. *)

val mult_create : int -> mult_state

val mult_eval : mult_state -> int -> int -> int

type shifter_state
(** Log-stage barrel shifter. *)

val shifter_create : int -> shifter_state

val shifter_eval : shifter_state -> int -> int -> int
(** [shifter_eval st value amount] *)

type logic_state
(** Single-level logic/mux plane. *)

val logic_create : int -> logic_state

val logic_eval : logic_state -> int -> int

type table_state
(** Lookup-table decoder and output plane. *)

val table_create : entries:int -> width:int -> table_state

val table_eval : table_state -> int -> int -> int
(** [table_eval st index value] *)
