open Isa.Builder

let case = Core.Extract.case

(* --- Alphablend --------------------------------------------------------- *)

let pixel_count = 256
let alphablend_alpha = 96
let src1_address = 0x11000
let src2_address = 0x11400
let alphablend_result_address = 0x11800

let alphablend_inputs () =
  (Data.bytes ~seed:91 pixel_count, Data.bytes ~seed:92 pixel_count)

let alphablend () =
  let b = create "alphablend" in
  let p1, p2 = alphablend_inputs () in
  bytes_at b "img1" ~addr:src1_address p1;
  bytes_at b "img2" ~addr:src2_address p2;
  label b "main";
  movi b a8 src1_address;
  movi b a9 src2_address;
  movi b a10 alphablend_result_address;
  loop_n b ~cnt:a2 pixel_count (fun () ->
      l8ui b a5 a8 0;
      l8ui b a6 a9 0;
      custom b "blend" ~dst:a4 ~imm:alphablend_alpha [ a5; a6 ];
      s8i b a4 a10 0;
      addi b a8 a8 1;
      addi b a9 a9 1;
      addi b a10 a10 1);
  halt b;
  case ~extension:Tie_lib.blend_ext "alphablend" (Wutil.assemble b)

(* --- Drawline ------------------------------------------------------------ *)

let framebuffer_address = 0x18000
let framebuffer_dim = 64

let drawline_endpoints =
  [ (0, 0, 63, 20); (5, 10, 60, 40); (2, 2, 50, 50);
    (10, 5, 63, 12); (0, 30, 40, 33); (20, 0, 63, 43) ]

let line_table_address = 0x17000

(* Bresenham, first octant (dx >= dy >= 0):
   a3=x, a4=y, a5=err, a6=2dx, a7=2dy, a9=x1, a13=pixel value. *)
let drawline () =
  let b = create "drawline" in
  let table =
    Array.concat
      (List.map (fun (x0, y0, x1, y1) -> [| x0; y0; x1; y1 |])
         drawline_endpoints)
  in
  Wutil.words_at b "lines" ~addr:line_table_address table;
  label b "main";
  movi b a10 line_table_address;
  movi b a8 framebuffer_address;
  movi b a13 255;
  movi b a2 (List.length drawline_endpoints);
  label b "next_line";
  l32i b a3 a10 0;        (* x0 *)
  l32i b a4 a10 4;        (* y0 *)
  l32i b a9 a10 8;        (* x1 *)
  l32i b a7 a10 12;       (* y1 *)
  sub b a6 a9 a3;         (* dx *)
  sub b a7 a7 a4;         (* dy *)
  slli b a7 a7 1;         (* 2dy *)
  sub b a5 a7 a6;         (* err = 2dy - dx *)
  slli b a6 a6 1;         (* 2dx *)
  label b "pixel";
  slli b a11 a4 6;
  add b a11 a11 a3;
  add b a11 a11 a8;
  s8i b a13 a11 0;
  blti b a5 1 "no_ystep";
  addi b a4 a4 1;
  sub b a5 a5 a6;
  label b "no_ystep";
  add b a5 a5 a7;
  addi b a3 a3 1;
  bge b a9 a3 "pixel";
  addi b a10 a10 16;
  addi b a2 a2 (-1);
  bnez b a2 "next_line";
  halt b;
  case "drawline" (Wutil.assemble b)
