(** Fork-based worker pool for per-workload fan-out.

    [map f xs] is observably [List.map f xs], computed by up to [jobs]
    forked workers with the results marshalled back over pipes and
    reassembled in input order.  Serial fallback when [jobs <= 1] (e.g. a
    single-core machine), when the list has fewer than two elements or
    when [fork] fails; a worker that dies or raises has its slice
    recomputed serially in the parent, so exceptions propagate with their
    real backtrace.

    The pool is hang-proof and leak-free by construction, which is what
    lets it sit inside the long-lived [xenergy serve] daemon:

    - every child is reaped with an [EINTR]-retrying [waitpid]
      ({!reap}) — a signal landing mid-join can no longer leak a zombie;
    - parent-side pipe reads can carry a deadline ([read_timeout_s]):
      each read is guarded by [select], and a worker that wedges past
      the deadline is killed, counted in
      [parallel_trace_dropped_lanes_total], logged as a
      [parallel:worker-timeout] record and its slice recomputed — the
      parent never blocks forever on a dead-but-silent pipe;
    - an invalid [XENERGY_JOBS] value is rejected with a
      [parallel:bad-jobs-env] {!Obs.Log} warning naming the value,
      instead of being silently replaced by the core count.

    Every degraded path is observable: counted in the [Obs.Metrics]
    registry ([parallel_serial_fallbacks_total],
    [parallel_failed_forks_total], [parallel_recomputed_slices_total],
    [parallel_recomputed_items_total],
    [parallel_trace_dropped_lanes_total],
    [parallel_pool_respawns_total]) and returned per call in
    {!run_stats}.  With [Obs.Trace] enabled, each worker records its
    spans on trace lane [w + 1] and ships them back with its results, so
    the merged Chrome trace shows genuine per-worker lanes framed by
    fork-to-join spans, with the parent's marshalled reads timed as
    [join:w] spans.

    A worker whose computation raises — or whose results cannot be
    marshalled — still ships its partial trace lane and metric
    increments back (the parent keeps them before recomputing the
    slice); only a worker that dies outright loses its lane, and that
    loss is counted and logged instead of disappearing silently.

    {2 Persistent pools}

    [map] forks its workers per call — the right shape for a one-shot
    CLI run, and pure waste for a daemon answering thousands of
    requests.  {!create_pool} forks the workers once; {!pool_map} feeds
    them batches over request pipes and reassembles results exactly like
    [map], with the same degradation ladder (failed sends, deaths,
    timeouts and in-worker exceptions all end in a parent-side
    recompute).  Lanes that died are respawned on the next batch
    (counted in [parallel_pool_respawns_total]), so a single poisonous
    request does not permanently shrink the pool. *)

val default_jobs : unit -> int
(** The [XENERGY_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()] (the available
    cores).  An unset or empty variable falls back silently; a present
    but invalid value (["0"], ["abc"]) additionally emits a
    [parallel:bad-jobs-env] {!Obs.Log} warning naming the rejected
    value, so a misconfigured deployment is visible in its logs. *)

val reap : int -> unit
(** [reap pid] — [Unix.waitpid] retried until it is not interrupted by a
    signal ([EINTR]).  Swallowing the interrupt (as a blanket exception
    handler would) leaks the child as a zombie; any other wait error
    means there is genuinely nothing to reap.  Used by every join in
    this module and exported for embedders that fork their own helpers
    (e.g. test harnesses spawning a daemon). *)

type run_stats = {
  workers_spawned : int;      (** forked workers that started *)
  failed_forks : int;         (** pipe/fork attempts that failed *)
  serial_fallback : bool;     (** parallelism requested, ran serially *)
  recomputed_slices : int;    (** workers whose slice was recomputed *)
  recomputed_items : int;     (** items computed in the parent *)
}

val no_stats : run_stats
(** All-zero statistics (the deliberate serial paths). *)

val map : ?jobs:int -> ?read_timeout_s:float -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] — [jobs] defaults to {!default_jobs}.  [f] must not
    rely on mutating shared state visible to the caller: it runs in a
    forked child whose writes are not seen by the parent (only the
    returned, marshalled value is).  [read_timeout_s] bounds how long
    the parent waits for any single worker's results (default: no
    bound); a worker that exceeds it is killed and its slice recomputed
    in the parent. *)

val map_with_stats :
  ?jobs:int -> ?read_timeout_s:float -> ('a -> 'b) -> 'a list ->
  'b list * run_stats
(** Like {!map}, also reporting how the pool degraded (if it did). *)

type ('a, 'b) pool
(** A persistent pool of forked workers computing ['a -> 'b], created
    once and reused across many {!pool_map} calls. *)

val create_pool :
  ?jobs:int -> ?read_timeout_s:float -> ('a -> 'b) -> ('a, 'b) pool
(** Fork [jobs] (default {!default_jobs}) persistent workers running the
    given function.  The function is fixed at creation (the fork
    captures it); the ['a] items sent later must be marshal-safe.
    [read_timeout_s] is the per-batch read deadline applied by every
    {!pool_map} (default: block).  [SIGPIPE] is set to ignore so a
    write to a just-died lane surfaces as a respawnable error rather
    than killing the embedding process. *)

val pool_map : ('a, 'b) pool -> 'a list -> 'b list
(** Observably [List.map f xs] over the pool's workers: items are
    partitioned round-robin over the live lanes, dead lanes are
    respawned first, and any lane that fails (send error, death, read
    timeout, in-worker exception) has its slice recomputed in the
    parent.  With no live lane at all the whole batch runs serially
    (counted as a serial fallback).

    The calling thread's [Obs.Trace] context (if any) is shipped with
    each batch and adopted by the lane for its duration, so worker item
    spans — which come back with the payload and are re-emitted by the
    parent — carry the requesting connection's [trace_id].
    @raise Invalid_argument if the pool has been shut down. *)

val pool_live : ('a, 'b) pool -> int
(** Number of currently live lanes (between 0 and [jobs]). *)

val shutdown_pool : ('a, 'b) pool -> unit
(** Ask every lane to quit, close its pipes and reap it ({!reap} — no
    zombies).  Idempotent; {!pool_map} afterwards raises. *)
