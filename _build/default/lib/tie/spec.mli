(** Custom-instruction (TIE) extension specifications.

    An extension groups custom state (registers), lookup tables and a set
    of instruction definitions that may share them — e.g. a MAC
    accumulator written by one instruction and read by another. *)

type operand_kind = In_reg | Imm

type operand = {
  oname : string;
  owidth : int;          (** bits consumed from the source, 1..32 *)
  okind : operand_kind;
}

type table_def = {
  tname : string;
  telem_width : int;
  tdata : int array;     (** entry count = array length *)
}

type state_def = {
  sname : string;
  swidth : int;
  sinit : int;
}

type insn_def = {
  iname : string;
  ins : operand list;    (** register operands map positionally to
                             [Custom.srcs]; at most one [Imm] *)
  result : Expr.t option;(** value written back to the destination
                             register, if the instruction has one *)
  updates : (string * Expr.t) list;  (** state-name, new-value pairs *)
  latency_override : int option;
}

type t = {
  ext_name : string;
  states : state_def list;
  tables : table_def list;
  instructions : insn_def list;
}

val empty : string -> t
(** Extension with no state, tables or instructions. *)

val operand : ?kind:operand_kind -> string -> int -> operand

val instruction :
  ?latency:int ->
  ?updates:(string * Expr.t) list ->
  string ->
  ins:operand list ->
  result:Expr.t option ->
  insn_def

val add_instruction : t -> insn_def -> t

val add_state : t -> state_def -> t

val add_table : t -> table_def -> t

val find_instruction : t -> string -> insn_def option
