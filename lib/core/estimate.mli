(** Application energy estimation (steps 9-11 of the paper's flow).

    With a characterized macro-model, estimating an application's energy
    needs only instruction-set simulation plus resource-usage analysis —
    no synthesis and no reference power estimation. *)

type result = {
  energy_pj : float;
  energy_uj : float;
  cycles : int;
  instructions : int;
  profile : Extract.profile;
}

val run :
  ?config:Sim.Config.t ->
  Template.model ->
  Extract.case ->
  result
(** Simulate the case once ({!Extract.val-profile}) and apply the model to
    the extracted variable vector. *)

val of_profile : Template.model -> Extract.profile -> result
(** Apply the model to an already-extracted profile (no simulation). *)
