(* Quickstart: assemble a program, simulate it, and estimate its energy
   with the macro-model — the complete user-facing flow in ~60 lines.

     dune exec examples/quickstart.exe *)

let fmt = Format.std_formatter

(* 1. Write a program.  Here we use the textual assembler; the Builder
   DSL (see the other examples) is equivalent. *)
let source =
  "# sum an array of 64 words\n\
   main:\n\
  \  movi a2, 69632        # 0x11000, the array base\n\
  \  movi a3, 64\n\
  \  movi a4, 0\n\
   loop:\n\
  \  l32i a5, a2, 0\n\
  \  add a4, a4, a5\n\
  \  addi a2, a2, 4\n\
  \  addi a3, a3, -1\n\
  \  bnez a3, loop\n\
  \  break\n"

let () =
  let program = Isa.Asm_parser.parse_string ~name:"sum64" source in
  (* Attach the input data and assemble. *)
  let program =
    { program with
      Isa.Program.data =
        [ { Isa.Program.dname = "input";
            daddr = Some 0x11000;
            dbytes =
              Array.concat
                (List.map
                   (fun w ->
                     Array.init 4 (fun k -> (w lsr (8 * k)) land 0xff))
                   (Array.to_list (Workloads.Data.words ~seed:1 64))) } ] }
  in
  let asm = Isa.Program.assemble program in

  (* 2. Simulate. *)
  let case = Core.Extract.case "sum64" asm in
  let profile = Core.Extract.profile case in
  Format.fprintf fmt "--- instruction-set simulation ---@.%a@.@."
    Core.Extract.pp_profile profile;

  (* 3. Characterize the processor once (regression over the 25-program
     suite) and apply the macro-model — no synthesis involved. *)
  Format.fprintf fmt "characterizing the processor...@.";
  let fit = Core.Characterize.run (Workloads.Suite.characterization ()) in
  let model = fit.Core.Characterize.model in
  let estimate = Core.Estimate.of_profile model profile in
  Format.fprintf fmt "macro-model estimate: %.3f uJ@."
    estimate.Core.Estimate.energy_uj;

  (* 4. Cross-check against the (slow) reference structural estimator,
     which plays the role of RTL power estimation. *)
  let reference_pj, _ = Power.Estimator.estimate_program asm in
  Format.fprintf fmt "reference estimator:  %.3f uJ  (error %+.2f%%)@."
    (Power.Report.to_uj reference_pj)
    (100.0
     *. (estimate.Core.Estimate.energy_pj -. reference_pj)
     /. reference_pj)
