lib/cc/codegen.mli: Ast Isa
