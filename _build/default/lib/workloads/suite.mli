(** Workload registry. *)

val characterization : unit -> Core.Extract.case list
(** The 25 characterization test programs. *)

val applications : unit -> Core.Extract.case list
(** The ten Table II application benchmarks, in the paper's order:
    ins_sort, gcd, alphablend, add4, bubsort, des, accumulate, drawline,
    multi_accumulate, seq_mult. *)

val reed_solomon_choices : unit -> Core.Extract.case list
(** The four Fig. 4 custom-instruction alternatives. *)

val c_applications : unit -> Core.Extract.case list
(** Applications compiled from Tiny-C sources ({!C_apps}). *)

val all : unit -> Core.Extract.case list

val find : string -> Core.Extract.case
(** Look up any workload by name.  @raise Not_found. *)

val names : unit -> string list
