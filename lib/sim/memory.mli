(** Sparse byte-addressable memory (paged). *)

type t

val create : unit -> t

val load8 : t -> int -> int
(** Unsigned byte; uninitialised memory reads as zero. *)

val load16 : t -> int -> int
(** Unsigned, little-endian.  @raise Invalid_argument if misaligned. *)

val load32 : t -> int -> int
(** @raise Invalid_argument if misaligned. *)

val store8 : t -> int -> int -> unit

val store16 : t -> int -> int -> unit

val store32 : t -> int -> int -> unit

val load_image : t -> (int * int array) list -> unit
(** Install initialised byte blocks (from [Program.asm.image]). *)

val bytes_touched : t -> int
(** Number of resident pages times the page size (footprint metric). *)

val copy : t -> t
(** Deep copy (independent pages); used by the backend equivalence
    checker to run the same program twice from identical state. *)
