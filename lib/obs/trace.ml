type arg =
  | S of string
  | I of int
  | F of float
  | B of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let cur_tid = ref 0
let set_tid t = cur_tid := t
let tid () = !cur_tid

(* Buffer in reverse order; [events] reverses once. *)
let buf : event list ref = ref []

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let record e = buf := e :: !buf

let complete ?(cat = "") ?(args = []) ?tid:tid_opt ~name ~ts ~dur () =
  if !on then
    record
      { ev_name = name;
        ev_cat = cat;
        ev_ph = 'X';
        ev_ts = ts;
        ev_dur = dur;
        ev_tid = Option.value tid_opt ~default:!cur_tid;
        ev_args = args }

let with_span ?cat ?args name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    let finish () = complete ?cat ?args ~name ~ts:t0 ~dur:(now_us () -. t0) () in
    match f () with
    | v -> finish (); v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let instant ?(cat = "") ?(args = []) name =
  if !on then
    record
      { ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us ();
        ev_dur = 0.0;
        ev_tid = !cur_tid;
        ev_args = args }

let thread_name ~tid:t name =
  if !on then
    record
      { ev_name = "thread_name";
        ev_cat = "__metadata";
        ev_ph = 'M';
        ev_ts = 0.0;
        ev_dur = 0.0;
        ev_tid = t;
        ev_args = [ ("name", S name) ] }

let emit_all es = if !on then List.iter record es

let events () = List.rev !buf
let clear () = buf := []

let drain () =
  let es = events () in
  clear ();
  es

(* --- Chrome trace-event JSON --------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f ->
    if Float.is_nan f || Float.abs f = Float.infinity then "0"
    else Printf.sprintf "%.6g" f
  | B b -> if b then "true" else "false"

let event_json e =
  let args =
    match e.ev_args with
    | [] -> ""
    | args ->
      Printf.sprintf ", \"args\": {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\": %s" (json_escape k) (arg_json v))
              args))
  in
  let dur =
    if e.ev_ph = 'X' then Printf.sprintf ", \"dur\": %.3f" e.ev_dur else ""
  in
  (* Instant events need a scope; thread scope matches the lane model. *)
  let scope = if e.ev_ph = 'i' then ", \"s\": \"t\"" else "" in
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %.3f%s, \
     \"pid\": 1, \"tid\": %d%s%s}"
    (json_escape e.ev_name)
    (json_escape (if e.ev_cat = "" then "xenergy" else e.ev_cat))
    e.ev_ph e.ev_ts dur e.ev_tid scope args

let to_json es =
  Printf.sprintf
    "{\n\"traceEvents\": [\n%s\n],\n\"displayTimeUnit\": \"ms\"\n}"
    (String.concat ",\n" (List.map event_json es))

let save path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json (events ()));
      Out_channel.output_char oc '\n')
