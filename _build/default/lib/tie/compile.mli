(** The TIE compiler.

    Validates an extension specification, infers bit widths, extracts the
    hardware component instances each instruction activates, estimates
    instruction latency from the datapath critical path, and produces
    executable semantics for the instruction-set simulator.

    Compilation also identifies the {e bus-facing} components — those
    whose inputs connect directly to the shared operand buses of the base
    datapath.  As in the paper's Example 1, these components see spurious
    switching activity whenever a {e base} instruction drives the operand
    buses; the resource-usage analysis and the reference power model both
    account for this side effect. *)

exception Tie_error of string

type compiled_insn = {
  def : Spec.insn_def;
  components : Component.t list;
  (** one entry per hardware instance activated by the instruction *)
  latency : int;              (** cycles in the execute stage, >= 1 *)
  regfile_reads : int;        (** number of [In_reg] operands *)
  writes_regfile : bool;
  bus_facing : Component.t list;
  (** subset of [components] wired straight to the operand buses *)
}

type compiled

val compile : Spec.t -> compiled
(** @raise Tie_error on unknown operand/state/table names, multiple
    immediate operands, or width inference failures. *)

val spec : compiled -> Spec.t

val find : compiled -> string -> compiled_insn option

val instructions : compiled -> compiled_insn list

val all_components : compiled -> Component.t list
(** Every component instance in the extension (concatenated over
    instructions, custom registers deduplicated per state). *)

val bus_facing_components : compiled -> Component.t list
(** Union of the per-instruction bus-facing sets. *)

(** {1 Runtime state} *)

type state_store

val create_state : compiled -> state_store
(** Fresh store with every state at its declared initial value. *)

val state_value : state_store -> string -> int
(** @raise Not_found for undeclared states. *)

val reset_state : compiled -> state_store -> unit

val execute :
  compiled ->
  state_store ->
  compiled_insn ->
  srcs:int list ->
  imm:int option ->
  int option
(** Run one instruction: returns the destination-register value (if the
    instruction has a result) and commits state updates.  Register
    operands are consumed positionally from [srcs].
    @raise Tie_error if [srcs] does not supply every register operand. *)
