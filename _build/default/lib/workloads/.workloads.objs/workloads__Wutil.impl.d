lib/workloads/wutil.ml: Array Isa
