lib/core/template.mli: Format Variables
