lib/sim/config.ml:
