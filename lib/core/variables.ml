type id =
  | Arith
  | Load
  | Store
  | Jump
  | Branch_taken
  | Branch_untaken
  | Icache_miss
  | Dcache_miss
  | Uncached_fetch
  | Interlock
  | Custom_side
  | Category of Tie.Component.category

let base =
  [ Arith; Load; Store; Jump; Branch_taken; Branch_untaken;
    Icache_miss; Dcache_miss; Uncached_fetch; Interlock; Custom_side ]

let all = base @ List.map (fun c -> Category c) Tie.Component.all_categories

let base_count = List.length base

let count = List.length all

let index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace tbl id i) all;
  fun id ->
    match Hashtbl.find_opt tbl id with Some i -> i | None -> assert false

let of_index i =
  match List.nth_opt all i with
  | Some id -> id
  | None -> invalid_arg "Variables.of_index: out of range"

let name = function
  | Arith -> "c_arith"
  | Load -> "c_load"
  | Store -> "c_store"
  | Jump -> "c_jump"
  | Branch_taken -> "c_btaken"
  | Branch_untaken -> "c_buntaken"
  | Icache_miss -> "n_icm"
  | Dcache_miss -> "n_dcm"
  | Uncached_fetch -> "n_unc"
  | Interlock -> "n_ilk"
  | Custom_side -> "c_side"
  | Category cat -> (
    match cat with
    | Tie.Component.Multiplier -> "x_mult"
    | Tie.Component.Adder -> "x_addsub"
    | Tie.Component.Logic -> "x_logic"
    | Tie.Component.Shifter -> "x_shifter"
    | Tie.Component.Custom_register -> "x_custreg"
    | Tie.Component.Tie_mult -> "x_tie_mult"
    | Tie.Component.Tie_mac -> "x_tie_mac"
    | Tie.Component.Tie_add -> "x_tie_add"
    | Tie.Component.Tie_csa -> "x_tie_csa"
    | Tie.Component.Table -> "x_table")

let describe = function
  | Arith -> "arithmetic instruction"
  | Load -> "load instruction"
  | Store -> "store instruction"
  | Jump -> "jump instruction"
  | Branch_taken -> "branch taken"
  | Branch_untaken -> "branch untaken"
  | Icache_miss -> "instruction cache miss"
  | Dcache_miss -> "data cache miss"
  | Uncached_fetch -> "uncached instruction fetch"
  | Interlock -> "processor interlock"
  | Custom_side -> "side effects due to custom instructions"
  | Category cat -> Tie.Component.category_name cat

let is_structural = function
  | Category _ -> true
  | Arith | Load | Store | Jump | Branch_taken | Branch_untaken
  | Icache_miss | Dcache_miss | Uncached_fetch | Interlock | Custom_side ->
    false
