lib/tie/expr.mli:
