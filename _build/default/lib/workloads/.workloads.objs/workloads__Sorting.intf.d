lib/workloads/sorting.mli: Core
