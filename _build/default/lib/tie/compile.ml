exception Tie_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Tie_error s)) fmt

type compiled_insn = {
  def : Spec.insn_def;
  components : Component.t list;
  latency : int;
  regfile_reads : int;
  writes_regfile : bool;
  bus_facing : Component.t list;
}

type compiled = {
  cspec : Spec.t;
  insns : (string * compiled_insn) list;
}

let make_ctx (spec : Spec.t) (def : Spec.insn_def) : Expr.ctx =
  let arg_width name =
    match List.find_opt (fun o -> o.Spec.oname = name) def.Spec.ins with
    | Some o -> o.Spec.owidth
    | None -> fail "%s: unknown operand %S" def.Spec.iname name
  in
  let state_width name =
    match List.find_opt (fun s -> s.Spec.sname = name) spec.Spec.states with
    | Some s -> s.Spec.swidth
    | None -> fail "%s: unknown state %S" def.Spec.iname name
  in
  let table_shape name =
    match List.find_opt (fun t -> t.Spec.tname = name) spec.Spec.tables with
    | Some t -> (Array.length t.Spec.tdata, t.Spec.telem_width)
    | None -> fail "%s: unknown table %S" def.Spec.iname name
  in
  { Expr.arg_width; state_width; table_shape }

(* Hardware component instance implied by one expression node, if any. *)
let node_component ctx e =
  let w () = Expr.width ctx e in
  match e with
  | Expr.Arg _ | Expr.Const _ | Expr.Concat _ | Expr.Extract _ -> None
  | Expr.State name ->
    Some (Component.make Component.Custom_register (ctx.Expr.state_width name))
  | Expr.Mul _ -> Some (Component.make Component.Multiplier (w ()))
  | Expr.Add _ | Expr.Sub _ | Expr.Cmp _ ->
    Some (Component.make Component.Adder (w ()))
  | Expr.And _ | Expr.Or _ | Expr.Xor _ | Expr.Not _ | Expr.Mux _
  | Expr.Reduce _ ->
    Some (Component.make Component.Logic (max (w ()) 1))
  | Expr.Shl _ | Expr.Shr _ | Expr.Sar _ ->
    Some (Component.make Component.Shifter (w ()))
  | Expr.Table (name, _) ->
    let entries, elem = ctx.Expr.table_shape name in
    Some (Component.make ~entries Component.Table elem)
  | Expr.Tie_mult _ -> Some (Component.make Component.Tie_mult (w ()))
  | Expr.Tie_mac _ -> Some (Component.make Component.Tie_mac (w ()))
  | Expr.Tie_add _ -> Some (Component.make Component.Tie_add (w ()))
  | Expr.Tie_csa _ -> Some (Component.make Component.Tie_csa (w ()))

(* Logic nodes whose width inference would yield 1 (reductions, compares)
   are still real hardware over the full input width; node_component uses
   the result width, which underestimates them.  Widen using the widest
   child. *)
let widen_by_children ctx e comp =
  match (e, comp) with
  | (Expr.Cmp (_, a, b), Some c) ->
    let w = max (Expr.width ctx a) (Expr.width ctx b) in
    Some { c with Component.width = max c.Component.width w }
  | (Expr.Reduce (_, a), Some c) ->
    Some { c with Component.width = max c.Component.width (Expr.width ctx a) }
  | (_, c) -> c

let in_reg_names (def : Spec.insn_def) =
  List.filter_map
    (fun o -> if o.Spec.okind = Spec.In_reg then Some o.Spec.oname else None)
    def.Spec.ins

let expr_components ctx regs e =
  (* Does an operand wire (possibly through pure wiring: extracts and
     concatenations) feed this node directly?  Such components sit on the
     operand buses and toggle under base instructions too. *)
  let rec wired_to_reg child =
    match child with
    | Expr.Arg name -> List.mem name regs
    | Expr.Extract (inner, _, _) -> wired_to_reg inner
    | Expr.Concat (hi, lo) -> wired_to_reg hi || wired_to_reg lo
    | _ -> false
  in
  let bus_of_node node = List.exists wired_to_reg (Expr.subexprs node) in
  Expr.fold
    (fun (comps, bus) node ->
      match widen_by_children ctx node (node_component ctx node) with
      | None -> (comps, bus)
      | Some c ->
        let bus = if bus_of_node node then c :: bus else bus in
        (c :: comps, bus))
    ([], []) e

let validate_insn (spec : Spec.t) (def : Spec.insn_def) =
  let imms =
    List.filter (fun o -> o.Spec.okind = Spec.Imm) def.Spec.ins
  in
  if List.length imms > 1 then
    fail "%s: at most one immediate operand is supported" def.Spec.iname;
  List.iter
    (fun (sname, _) ->
      if not (List.exists (fun s -> s.Spec.sname = sname) spec.Spec.states)
      then fail "%s: update of unknown state %S" def.Spec.iname sname)
    def.Spec.updates;
  let names = List.map (fun o -> o.Spec.oname) def.Spec.ins in
  let rec dup = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then
        fail "%s: duplicate operand name %S" def.Spec.iname x
      else dup rest
  in
  dup names

let compile_insn (spec : Spec.t) (def : Spec.insn_def) =
  validate_insn spec def;
  let ctx = make_ctx spec def in
  let exprs =
    (match def.Spec.result with Some e -> [ e ] | None -> [])
    @ List.map snd def.Spec.updates
  in
  (* Width-check everything up front so errors surface at compile time. *)
  List.iter (fun e -> ignore (Expr.width ctx e)) exprs;
  let regs = in_reg_names def in
  let comps, bus =
    List.fold_left
      (fun (cs, bs) e ->
        let c, b = expr_components ctx regs e in
        (cs @ c, bs @ b))
      ([], []) exprs
  in
  (* A written state is hardware even if never read in this instruction. *)
  let written_states =
    List.map
      (fun (sname, _) ->
        Component.make Component.Custom_register (ctx.Expr.state_width sname))
      def.Spec.updates
  in
  let comps = comps @ written_states in
  let delay =
    List.fold_left (fun m e -> Float.max m (Expr.depth_delay e)) 0.0 exprs
  in
  let latency =
    match def.Spec.latency_override with
    | Some n ->
      if n < 1 then fail "%s: latency must be >= 1" def.Spec.iname else n
    | None -> max 1 (int_of_float (Float.ceil (delay /. 4.0)))
  in
  { def;
    components = comps;
    latency;
    regfile_reads = List.length regs;
    writes_regfile = def.Spec.result <> None;
    bus_facing = bus }

let compile spec =
  let names = List.map (fun i -> i.Spec.iname) spec.Spec.instructions in
  let rec dup = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then fail "duplicate instruction name %S" x
      else dup rest
  in
  dup names;
  let insns =
    List.map
      (fun def -> (def.Spec.iname, compile_insn spec def))
      spec.Spec.instructions
  in
  { cspec = spec; insns }

let spec c = c.cspec

let find c name = List.assoc_opt name c.insns

let instructions c = List.map snd c.insns

let all_components c =
  (* Custom registers are physical state: one instance per declared state,
     plus the combinational instances of every instruction. *)
  let state_regs =
    List.map
      (fun s -> Component.make Component.Custom_register s.Spec.swidth)
      c.cspec.Spec.states
  in
  let non_state =
    List.concat_map
      (fun (_, i) ->
        List.filter
          (fun comp -> comp.Component.category <> Component.Custom_register)
          i.components)
      c.insns
  in
  state_regs @ non_state

let bus_facing_components c =
  List.concat_map (fun (_, i) -> i.bus_facing) c.insns

type state_store = (string, int) Hashtbl.t

let create_state c =
  let h = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.replace h s.Spec.sname s.Spec.sinit)
    c.cspec.Spec.states;
  h

let state_value store name =
  match Hashtbl.find_opt store name with
  | Some v -> v
  | None -> raise Not_found

let reset_state c store =
  Hashtbl.reset store;
  List.iter
    (fun s -> Hashtbl.replace store s.Spec.sname s.Spec.sinit)
    c.cspec.Spec.states

let mask_to w v = if w >= 63 then v else v land ((1 lsl w) - 1)

let execute c store insn ~srcs ~imm =
  let def = insn.def in
  let ctx = make_ctx c.cspec def in
  (* Bind operands positionally: register operands consume [srcs] in
     order, the immediate operand takes [imm]. *)
  let bindings =
    let rec bind ops srcs =
      match ops with
      | [] -> []
      | o :: rest -> (
        match o.Spec.okind with
        | Spec.Imm ->
          let v =
            match imm with
            | Some v -> v
            | None -> fail "%s: missing immediate" def.Spec.iname
          in
          (o.Spec.oname, mask_to o.Spec.owidth v) :: bind rest srcs
        | Spec.In_reg -> (
          match srcs with
          | v :: more ->
            (o.Spec.oname, mask_to o.Spec.owidth v) :: bind rest more
          | [] ->
            fail "%s: not enough register operands" def.Spec.iname))
    in
    bind def.Spec.ins srcs
  in
  let env =
    { Expr.arg =
        (fun name ->
          match List.assoc_opt name bindings with
          | Some v -> v
          | None -> fail "%s: unbound operand %S" def.Spec.iname name);
      state =
        (fun name ->
          match Hashtbl.find_opt store name with
          | Some v -> v
          | None -> fail "%s: unbound state %S" def.Spec.iname name);
      table =
        (fun name idx ->
          match
            List.find_opt (fun t -> t.Spec.tname = name) c.cspec.Spec.tables
          with
          | Some t -> t.Spec.tdata.(idx)
          | None -> fail "%s: unbound table %S" def.Spec.iname name) }
  in
  let result =
    match def.Spec.result with
    | Some e -> Some (mask_to 32 (Expr.eval ctx env e))
    | None -> None
  in
  (* Simultaneous update semantics: evaluate all new values against the
     old state, then commit. *)
  let new_values =
    List.map
      (fun (sname, e) ->
        let sw = ctx.Expr.state_width sname in
        (sname, mask_to sw (Expr.eval ctx env e)))
      def.Spec.updates
  in
  List.iter (fun (sname, v) -> Hashtbl.replace store sname v) new_values;
  result
