lib/workloads/suite.ml: C_apps Characterization Core Crypto Graphics List Math_apps Reed_solomon Sorting
