(* Unix.fork-based worker pool for the characterization engine.

   Work items are partitioned round-robin over [jobs] forked workers;
   each worker computes its (index, result) pairs and marshals them back
   over a pipe.  Results are reassembled in input order, so [map] is
   observably identical to [List.map] (marshalling round-trips floats
   bit-exactly).  Degrades gracefully: with one core, one job, one item
   or a failed [fork] it just runs serially, and any worker that dies or
   raises has its slice recomputed serially in the parent (re-raising
   there if the computation genuinely fails).

   Observability: every degraded path is counted (metrics + [run_stats],
   surfaced in the characterization run report), and with tracing on
   each worker records its own spans on lane [w + 1], shipping them back
   inside the result payload so the parent's Chrome trace shows true
   per-worker lanes; the parent frames each lane with a fork-to-join
   span and times the marshalled reads. *)

let default_jobs () =
  match Sys.getenv_opt "XENERGY_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type run_stats = {
  workers_spawned : int;
  failed_forks : int;
  serial_fallback : bool;
  recomputed_slices : int;
  recomputed_items : int;
}

let no_stats =
  { workers_spawned = 0;
    failed_forks = 0;
    serial_fallback = false;
    recomputed_slices = 0;
    recomputed_items = 0 }

module M = struct
  let serial_fallbacks =
    lazy (Obs.Metrics.counter "parallel_serial_fallbacks_total")

  let failed_forks = lazy (Obs.Metrics.counter "parallel_failed_forks_total")

  let recomputed_slices =
    lazy (Obs.Metrics.counter "parallel_recomputed_slices_total")

  let recomputed_items =
    lazy (Obs.Metrics.counter "parallel_recomputed_items_total")

  let workers_spawned =
    lazy (Obs.Metrics.counter "parallel_workers_spawned_total")

  let slice_seconds = lazy (Obs.Metrics.histogram "parallel_slice_seconds")

  let trace_dropped_lanes =
    lazy
      (Obs.Metrics.counter
         ~help:"workers that died before shipping their trace lane back"
         "parallel_trace_dropped_lanes_total")
end

type 'b payload = {
  p_res : ((int * 'b) list, string) result;
  p_events : Obs.Trace.event list;
  p_metrics : Obs.Metrics.snapshot option;
}

let stride_indices ~n ~jobs w =
  List.filter (fun i -> i mod jobs = w) (List.init n Fun.id)

let spawn_worker arr f ~n ~jobs w =
  match Unix.pipe ~cloexec:false () with
  | exception Unix.Unix_error _ -> None
  | rd, wr -> (
    match Unix.fork () with
    | exception Unix.Unix_error _ ->
      Unix.close rd;
      Unix.close wr;
      None
    | 0 ->
      Unix.close rd;
      let oc = Unix.out_channel_of_descr wr in
      (* The child starts its own lane and ships only its delta: trace
         events recorded after this point, metric increments on top of a
         zeroed registry (the fork copied the parent's values; resetting
         here touches only the child's copy). *)
      Obs.Trace.set_tid (w + 1);
      Obs.Trace.clear ();
      let metrics_on = Obs.Metrics.enabled () in
      if metrics_on then Obs.Metrics.reset ();
      let res =
        try
          Ok
            (List.map
               (fun i ->
                 ( i,
                   Obs.Trace.with_span ~cat:"parallel"
                     (Printf.sprintf "item:%d" i)
                     (fun () -> f arr.(i)) ))
               (stride_indices ~n ~jobs w))
        with e -> Error (Printexc.to_string e)
      in
      let payload =
        { p_res = res;
          p_events = Obs.Trace.drain ();
          p_metrics = (if metrics_on then Some (Obs.Metrics.snapshot ()) else None)
        }
      in
      (try
         Marshal.to_channel oc payload [];
         flush oc
       with _ -> (
         (* The results may be unmarshalable (e.g. a closure in 'b).
            Don't lose the lane with them: ship the observability data
            alone, with an Error result so the parent recomputes the
            slice. *)
         try
           Marshal.to_channel oc
             { payload with p_res = Error "worker: unmarshalable result" }
             [];
           flush oc
         with _ -> ()));
      (* _exit: skip at_exit handlers and inherited buffer flushes. *)
      Unix._exit 0
    | pid ->
      Unix.close wr;
      Some (pid, rd, Obs.Trace.now_us (), stride_indices ~n ~jobs w))

let map_with_stats ?jobs f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs =
    let j = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min j n)
  in
  if jobs <= 1 || n <= 1 then (List.map f xs, no_stats)
  else begin
    (* Children inherit the stdio buffers: flush so nothing is emitted
       twice. *)
    flush stdout;
    flush stderr;
    let attempts = List.init jobs Fun.id in
    let workers =
      List.filter_map
        (fun w -> Option.map (fun s -> (w, s)) (spawn_worker arr f ~n ~jobs w))
        attempts
    in
    let spawned = List.length workers in
    let failed_forks = jobs - spawned in
    Obs.Metrics.inc ~by:failed_forks (Lazy.force M.failed_forks);
    Obs.Metrics.inc ~by:spawned (Lazy.force M.workers_spawned);
    if failed_forks > 0 then
      Obs.Log.event ~level:Obs.Log.Warn "parallel:fork-failed"
        [ ("requested", Obs.Trace.I jobs);
          ("spawned", Obs.Trace.I spawned) ];
    if workers = [] then begin
      (* Parallelism was requested but no worker could be forked: run the
         whole map serially in the parent. *)
      Obs.Metrics.inc (Lazy.force M.serial_fallbacks);
      Obs.Log.event ~level:Obs.Log.Warn "parallel:serial-fallback"
        [ ("items", Obs.Trace.I n) ];
      ( List.map f xs,
        { no_stats with failed_forks; serial_fallback = true } )
    end
    else begin
      if Obs.Trace.enabled () then begin
        Obs.Trace.thread_name ~tid:0 "main";
        List.iter
          (fun (w, _) ->
            Obs.Trace.thread_name ~tid:(w + 1)
              (Printf.sprintf "worker %d" (w + 1)))
          workers
      end;
      let results = Array.make n None in
      let leftover = ref [] in
      let recomputed_slices = ref 0 in
      let covered = Array.make n false in
      List.iter
        (fun (_, (_, _, _, idxs)) ->
          List.iter (fun i -> covered.(i) <- true) idxs)
        workers;
      Array.iteri (fun i c -> if not c then leftover := i :: !leftover) covered;
      List.iter
        (fun (w, (pid, rd, t_fork, idxs)) ->
          let ic = Unix.in_channel_of_descr rd in
          let t_read = Obs.Trace.now_us () in
          let payload =
            match (Marshal.from_channel ic : _ payload) with
            | p -> Some p
            | exception _ -> None
          in
          Obs.Trace.complete ~cat:"parallel" ~tid:0
            ~name:(Printf.sprintf "join:%d" (w + 1))
            ~ts:t_read
            ~dur:(Obs.Trace.now_us () -. t_read)
            ();
          (try close_in ic with _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          let t_join = Obs.Trace.now_us () in
          Obs.Trace.complete ~cat:"parallel" ~tid:(w + 1)
            ~name:(Printf.sprintf "worker:%d" (w + 1))
            ~args:[ ("items", Obs.Trace.I (List.length idxs)) ]
            ~ts:t_fork ~dur:(t_join -. t_fork) ();
          Obs.Metrics.observe (Lazy.force M.slice_seconds)
            ((t_join -. t_fork) /. 1e6);
          match payload with
          | Some { p_res = Ok pairs; p_events; p_metrics } ->
            Obs.Trace.emit_all p_events;
            Option.iter Obs.Metrics.merge p_metrics;
            List.iter (fun (i, r) -> results.(i) <- Some r) pairs
          | Some { p_res = Error reason; p_events; p_metrics } ->
            (* Failing worker: its computation (or the result marshal)
               raised, but it still shipped its partial trace lane and
               metric increments — keep them, then recompute the slice in
               the parent so a genuine exception surfaces with its real
               backtrace. *)
            Obs.Trace.emit_all p_events;
            Option.iter Obs.Metrics.merge p_metrics;
            Obs.Log.event ~level:Obs.Log.Warn "parallel:worker-failed"
              [ ("worker", Obs.Trace.I (w + 1));
                ("items", Obs.Trace.I (List.length idxs));
                ("reason", Obs.Trace.S reason) ];
            incr recomputed_slices;
            leftover := idxs @ !leftover
          | None ->
            (* Dead worker (killed, crashed, or its pipe broke before the
               payload landed): its trace lane is gone.  Count the loss
               instead of hiding it, then recompute the slice. *)
            Obs.Metrics.inc (Lazy.force M.trace_dropped_lanes);
            Obs.Trace.instant ~cat:"parallel" "parallel:lane-dropped"
              ~args:[ ("worker", Obs.Trace.I (w + 1)) ];
            Obs.Log.event ~level:Obs.Log.Warn "parallel:lane-dropped"
              [ ("worker", Obs.Trace.I (w + 1));
                ("items", Obs.Trace.I (List.length idxs)) ];
            incr recomputed_slices;
            leftover := idxs @ !leftover)
        workers;
      Obs.Metrics.inc ~by:!recomputed_slices (Lazy.force M.recomputed_slices);
      let recomputed_items = List.length !leftover in
      Obs.Metrics.inc ~by:recomputed_items (Lazy.force M.recomputed_items);
      List.iter (fun i -> results.(i) <- Some (f arr.(i))) !leftover;
      ( Array.to_list (Array.map Option.get results),
        { workers_spawned = spawned;
          failed_forks;
          serial_fallback = false;
          recomputed_slices = !recomputed_slices;
          recomputed_items } )
    end
  end

let map ?jobs f xs = fst (map_with_stats ?jobs f xs)
