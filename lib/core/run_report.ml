type entry = {
  ename : string;
  wall_seconds : float;
  cycles : int;
  instructions : int;
  icache_misses : int;
  dcache_misses : int;
  stall_cycles : int;
  interlocks : int;
  energy_pj : float;
  simulations : int;
}

type degraded = {
  serial_fallbacks : int;
  failed_forks : int;
  recomputed_slices : int;
}

let no_degraded = { serial_fallbacks = 0; failed_forks = 0; recomputed_slices = 0 }

type t = {
  entries : entry list;
  total_seconds : float;
  jobs : int;
  parallel : degraded;
  sim_backend : string;
}

let total_simulations t =
  List.fold_left (fun acc e -> acc + e.simulations) 0 t.entries

let total_energy_pj t =
  List.fold_left (fun acc e -> acc +. e.energy_pj) 0.0 t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>%-24s %9s %10s %8s %7s %7s %7s %7s %12s %5s@,"
    "workload" "wall (s)" "cycles" "instrs" "i-miss" "d-miss" "stalls" "ilks"
    "energy (uJ)" "sims";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-24s %9.4f %10d %8d %7d %7d %7d %7d %12.3f %5d@,"
        e.ename e.wall_seconds e.cycles e.instructions e.icache_misses
        e.dcache_misses e.stall_cycles e.interlocks
        (e.energy_pj /. 1.0e6) e.simulations)
    t.entries;
  Format.fprintf ppf
    "%d workloads, %d simulations, %.3f uJ total, %.3f s wall clock \
     (%d worker%s)@,"
    (List.length t.entries) (total_simulations t)
    (total_energy_pj t /. 1.0e6)
    t.total_seconds t.jobs
    (if t.jobs = 1 then "" else "s");
  if t.sim_backend <> "interp" then
    Format.fprintf ppf "simulation backend: %s@," t.sim_backend;
  if t.parallel <> no_degraded then
    Format.fprintf ppf
      "degraded: %d serial fallback%s, %d failed fork%s, %d recomputed \
       slice%s@,"
      t.parallel.serial_fallbacks
      (if t.parallel.serial_fallbacks = 1 then "" else "s")
      t.parallel.failed_forks
      (if t.parallel.failed_forks = 1 then "" else "s")
      t.parallel.recomputed_slices
      (if t.parallel.recomputed_slices = 1 then "" else "s");
  Format.fprintf ppf "@]"

(* Hand-rolled JSON: the report is flat and numeric, no dependency is
   worth it.  Units are stated explicitly because the pretty-printer
   shows uJ while the JSON carries pJ. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_to_json e =
  Printf.sprintf
    "{\"name\": \"%s\", \"wall_seconds\": %.6f, \"cycles\": %d, \
     \"instructions\": %d, \"icache_misses\": %d, \"dcache_misses\": %d, \
     \"stall_cycles\": %d, \"interlocks\": %d, \"energy_pj\": %.6f, \
     \"simulations\": %d}"
    (json_escape e.ename) e.wall_seconds e.cycles e.instructions
    e.icache_misses e.dcache_misses e.stall_cycles e.interlocks e.energy_pj
    e.simulations

let to_json t =
  Printf.sprintf
    "{\n  \"units\": {\"energy_pj\": \"picojoules\", \"wall_seconds\": \
     \"seconds\", \"total_seconds\": \"seconds\"},\n  \"jobs\": %d,\n  \
     \"sim_backend\": \"%s\",\n  \
     \"total_seconds\": %.6f,\n  \"total_simulations\": %d,\n  \
     \"total_energy_pj\": %.6f,\n  \"parallel\": {\"serial_fallbacks\": %d, \
     \"failed_forks\": %d, \"recomputed_slices\": %d},\n  \
     \"workloads\": [\n    %s\n  ]\n}"
    t.jobs (json_escape t.sim_backend) t.total_seconds (total_simulations t)
    (total_energy_pj t)
    t.parallel.serial_fallbacks t.parallel.failed_forks
    t.parallel.recomputed_slices
    (String.concat ",\n    " (List.map entry_to_json t.entries))

let of_json s =
  let j = Obs.Json.parse s in
  let mem k j = Obs.Json.member k j in
  let entry e =
    { ename = Obs.Json.to_string (mem "name" e);
      wall_seconds = Obs.Json.to_float (mem "wall_seconds" e);
      cycles = Obs.Json.to_int (mem "cycles" e);
      instructions = Obs.Json.to_int (mem "instructions" e);
      icache_misses = Obs.Json.to_int (mem "icache_misses" e);
      dcache_misses = Obs.Json.to_int (mem "dcache_misses" e);
      stall_cycles = Obs.Json.to_int (mem "stall_cycles" e);
      interlocks = Obs.Json.to_int (mem "interlocks" e);
      energy_pj = Obs.Json.to_float (mem "energy_pj" e);
      simulations = Obs.Json.to_int (mem "simulations" e) }
  in
  let p = mem "parallel" j in
  (* Reports written before the backend field existed were always produced
     by the interpreter, so its absence decodes to "interp". *)
  let sim_backend =
    match j with
    | Obs.Json.Obj fields -> (
      match List.assoc_opt "sim_backend" fields with
      | Some v -> Obs.Json.to_string v
      | None -> "interp")
    | _ -> "interp"
  in
  { entries = List.map entry (Obs.Json.to_list (mem "workloads" j));
    total_seconds = Obs.Json.to_float (mem "total_seconds" j);
    jobs = Obs.Json.to_int (mem "jobs" j);
    sim_backend;
    parallel =
      { serial_fallbacks = Obs.Json.to_int (mem "serial_fallbacks" p);
        failed_forks = Obs.Json.to_int (mem "failed_forks" p);
        recomputed_slices = Obs.Json.to_int (mem "recomputed_slices" p) } }

let save path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json t);
      Out_channel.output_char oc '\n')
