lib/core/extract.mli: Format Isa Sim Tie Variables
