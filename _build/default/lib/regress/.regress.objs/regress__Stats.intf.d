lib/regress/stats.mli:
