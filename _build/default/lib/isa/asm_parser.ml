exception Parse_error of int * string

let fail ln fmt = Format.kasprintf (fun s -> raise (Parse_error (ln, s))) fmt

let strip_comment line =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut '#' (cut ';' line)

(* An operand is a register, an integer or a symbol. *)
type operand =
  | Oreg of Reg.t
  | Oint of int
  | Osym of string

let parse_int s =
  match int_of_string_opt s with Some n -> Some n | None -> None

let parse_operand ln s =
  let s = String.trim s in
  if s = "" then fail ln "empty operand"
  else if String.length s >= 2 && s.[0] = 'a'
          && (match parse_int (String.sub s 1 (String.length s - 1)) with
              | Some n -> n >= 0 && n <= 15
              | None -> false)
  then Oreg (Reg.a (int_of_string (String.sub s 1 (String.length s - 1))))
  else
    match parse_int s with
    | Some n -> Oint n
    | None -> Osym s

let split_operands s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let reg ln = function
  | Oreg r -> r
  | Oint _ | Osym _ -> fail ln "expected a register operand"

let num ln = function
  | Oint n -> n
  | Oreg _ | Osym _ -> fail ln "expected an integer operand"

let sym ln = function
  | Osym l -> l
  | Oint _ | Oreg _ -> fail ln "expected a label operand"

let rec parse_instr ln mnem ops =
  let open Instr in
  let r = reg ln and n = num ln and l = sym ln in
  let bin op =
    match ops with
    | [ d; s; t ] -> Binop (op, r d, r s, r t)
    | _ -> fail ln "%s expects 3 registers" mnem
  in
  let un op =
    match ops with
    | [ d; s ] -> Unop (op, r d, r s)
    | _ -> fail ln "%s expects 2 registers" mnem
  in
  let cm op =
    match ops with
    | [ d; s; t ] -> Cmov (op, r d, r s, r t)
    | _ -> fail ln "%s expects 3 registers" mnem
  in
  let rri f =
    match ops with
    | [ d; s; i ] -> f (r d) (r s) (n i)
    | _ -> fail ln "%s expects reg, reg, imm" mnem
  in
  let rr f =
    match ops with
    | [ d; s ] -> f (r d) (r s)
    | _ -> fail ln "%s expects 2 registers" mnem
  in
  let ld op =
    match ops with
    | [ d; b; off ] -> Load (op, r d, r b, n off)
    | _ -> fail ln "%s expects reg, base, offset" mnem
  in
  let st op =
    match ops with
    | [ v; b; off ] -> Store (op, r v, r b, n off)
    | _ -> fail ln "%s expects reg, base, offset" mnem
  in
  let b2 c =
    match ops with
    | [ s; t; lab ] -> Branch2 (c, r s, r t, l lab)
    | _ -> fail ln "%s expects reg, reg, label" mnem
  in
  let bi c =
    match ops with
    | [ s; i; lab ] -> Branchi (c, r s, n i, l lab)
    | _ -> fail ln "%s expects reg, imm, label" mnem
  in
  let bz c =
    match ops with
    | [ s; lab ] -> Branchz (c, r s, l lab)
    | _ -> fail ln "%s expects reg, label" mnem
  in
  match mnem with
  | "add" -> bin Add | "addx2" -> bin Addx2
  | "addx4" -> bin Addx4 | "addx8" -> bin Addx8
  | "sub" -> bin Sub | "subx2" -> bin Subx2
  | "subx4" -> bin Subx4 | "subx8" -> bin Subx8
  | "and" -> bin And_ | "or" -> bin Or_ | "xor" -> bin Xor
  | "min" -> bin Min | "max" -> bin Max
  | "minu" -> bin Minu | "maxu" -> bin Maxu
  | "mul16s" -> bin Mul16s | "mul16u" -> bin Mul16u | "mull" -> bin Mull
  | "abs" -> un Abs | "neg" -> un Neg | "nsa" -> un Nsa | "nsau" -> un Nsau
  | "sext" -> rri (fun d s b -> Sext (d, s, b))
  | "moveqz" -> cm Moveqz | "movnez" -> cm Movnez
  | "movltz" -> cm Movltz | "movgez" -> cm Movgez
  | "addi" -> rri (fun d s i -> Addi (d, s, i))
  | "addmi" -> rri (fun d s i -> Addmi (d, s, i))
  | "movi" -> (
    match ops with
    | [ d; i ] -> Movi (r d, n i)
    | _ -> fail ln "movi expects reg, imm")
  | "mov" -> rr (fun d s -> Mov (d, s))
  | "extui" -> (
    match ops with
    | [ d; s; sh; w ] -> Extui (r d, r s, n sh, n w)
    | _ -> fail ln "extui expects reg, reg, shift, width")
  | "slli" -> rri (fun d s i -> Slli (d, s, i))
  | "srli" -> rri (fun d s i -> Srli (d, s, i))
  | "srai" -> rri (fun d s i -> Srai (d, s, i))
  | "sll" -> rr (fun d s -> Sll (d, s))
  | "srl" -> rr (fun d s -> Srl (d, s))
  | "sra" -> rr (fun d s -> Sra (d, s))
  | "src" -> bin_src ln mnem ops
  | "ssai" -> (
    match ops with
    | [ i ] -> Ssai (n i)
    | _ -> fail ln "ssai expects imm")
  | "ssl" -> (
    match ops with
    | [ s ] -> Ssl (r s)
    | _ -> fail ln "ssl expects reg")
  | "ssr" -> (
    match ops with
    | [ s ] -> Ssr (r s)
    | _ -> fail ln "ssr expects reg")
  | "l8ui" -> ld L8ui | "l16si" -> ld L16si
  | "l16ui" -> ld L16ui | "l32i" -> ld L32i
  | "l32r" -> (
    match ops with
    | [ d; lab ] -> L32r (r d, l lab)
    | _ -> fail ln "l32r expects reg, label")
  | "s8i" -> st S8i | "s16i" -> st S16i | "s32i" -> st S32i
  | "beq" -> b2 Beq | "bne" -> b2 Bne | "blt" -> b2 Blt | "bge" -> b2 Bge
  | "bltu" -> b2 Bltu | "bgeu" -> b2 Bgeu
  | "bany" -> b2 Bany | "bnone" -> b2 Bnone
  | "ball" -> b2 Ball | "bnall" -> b2 Bnall
  | "beqi" -> bi Beqi | "bnei" -> bi Bnei | "blti" -> bi Blti
  | "bgei" -> bi Bgei | "bltui" -> bi Bltui | "bgeui" -> bi Bgeui
  | "beqz" -> bz Beqz | "bnez" -> bz Bnez
  | "bltz" -> bz Bltz | "bgez" -> bz Bgez
  | "bbc" -> (
    match ops with
    | [ s; t; lab ] -> Bbit (false, r s, r t, l lab)
    | _ -> fail ln "bbc expects reg, reg, label")
  | "bbs" -> (
    match ops with
    | [ s; t; lab ] -> Bbit (true, r s, r t, l lab)
    | _ -> fail ln "bbs expects reg, reg, label")
  | "bbci" -> (
    match ops with
    | [ s; i; lab ] -> Bbiti (false, r s, n i, l lab)
    | _ -> fail ln "bbci expects reg, imm, label")
  | "bbsi" -> (
    match ops with
    | [ s; i; lab ] -> Bbiti (true, r s, n i, l lab)
    | _ -> fail ln "bbsi expects reg, imm, label")
  | "j" -> (
    match ops with
    | [ lab ] -> J (l lab)
    | _ -> fail ln "j expects label")
  | "jx" -> (
    match ops with
    | [ s ] -> Jx (r s)
    | _ -> fail ln "jx expects reg")
  | "call0" -> (
    match ops with
    | [ lab ] -> Call0 (l lab)
    | _ -> fail ln "call0 expects label")
  | "callx0" -> (
    match ops with
    | [ s ] -> Callx0 (r s)
    | _ -> fail ln "callx0 expects reg")
  | "call8" -> (
    match ops with
    | [ lab ] -> Call8 (l lab)
    | _ -> fail ln "call8 expects label")
  | "callx8" -> (
    match ops with
    | [ s ] -> Callx8 (r s)
    | _ -> fail ln "callx8 expects reg")
  | "ret" -> only0 ln mnem ops Ret
  | "retw" -> only0 ln mnem ops Retw
  | "entry" -> rri_entry ln ops
  | "nop" -> only0 ln mnem ops Nop
  | "memw" -> only0 ln mnem ops Memw
  | "extw" -> only0 ln mnem ops Extw
  | "isync" -> only0 ln mnem ops Isync
  | "break" -> only0 ln mnem ops Break
  | _ ->
    if String.length mnem > 4 && String.sub mnem 0 4 = "tie." then
      parse_custom ln (String.sub mnem 4 (String.length mnem - 4)) ops
    else fail ln "unknown mnemonic %S" mnem

and only0 ln mnem ops i =
  match ops with [] -> i | _ -> fail ln "%s takes no operands" mnem

and bin_src ln mnem ops =
  match ops with
  | [ d; s; t ] -> Instr.Src (reg ln d, reg ln s, reg ln t)
  | _ -> fail ln "%s expects 3 registers" mnem

and rri_entry ln ops =
  match ops with
  | [ sp; i ] -> Instr.Entry (reg ln sp, num ln i)
  | _ -> fail ln "entry expects reg, imm"

and parse_custom ln name ops =
  let imm, regs =
    match List.rev ops with
    | Oint n :: rest -> (Some n, List.rev rest)
    | _ -> (None, ops)
  in
  let regs = List.map (reg ln) regs in
  match regs with
  | [] -> Instr.Custom { cname = name; dst = None; srcs = []; cimm = imm }
  | d :: srcs -> Instr.Custom { cname = name; dst = Some d; srcs; cimm = imm }

let parse_line ln line =
  let line = String.trim (strip_comment line) in
  if line = "" then []
  else if String.length line > 0 && line.[0] = '.' then
    fail ln "directives are not instructions"
  else
    (* Optional leading "label:" *)
    let label, rest =
      match String.index_opt line ':' with
      | Some i
        when not (String.contains (String.sub line 0 i) ' ') ->
        ( Some (String.trim (String.sub line 0 i)),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
      | Some _ | None -> (None, line)
    in
    let items =
      match label with Some l -> [ Program.Label l ] | None -> []
    in
    if rest = "" then items
    else
      let mnem, ops_str =
        match String.index_opt rest ' ' with
        | Some i ->
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
        | None -> (rest, "")
      in
      let ops = List.map (parse_operand ln) (split_operands ops_str) in
      items @ [ Program.Insn (parse_instr ln mnem ops) ]

let parse_directive ln line =
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let nums ln rest =
    List.map
      (fun s ->
        match int_of_string_opt s with
        | Some n -> n
        | None -> fail ln "bad integer %S in directive" s)
      rest
  in
  match tokens with
  | ".lit" :: name :: [ v ] ->
    `Lit (name, Program.Lit_int (nums ln [ v ] |> List.hd))
  | ".lit_addr" :: name :: [ l ] -> `Lit (name, Program.Lit_addr l)
  | ".words" :: name :: rest -> `Words (name, Array.of_list (nums ln rest))
  | ".bytes" :: name :: rest -> `Bytes (name, None, Array.of_list (nums ln rest))
  | ".bytes_at" :: name :: addr :: rest ->
    let a = nums ln [ addr ] |> List.hd in
    `Bytes (name, Some a, Array.of_list (nums ln rest))
  | d :: _ -> fail ln "unknown directive %S" d
  | [] -> fail ln "empty directive"

let parse_string ~name src =
  let lines = String.split_on_char '\n' src in
  let items = ref [] in
  let literals = ref [] in
  let data = ref [] in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let stripped = String.trim (strip_comment line) in
      if stripped = "" then ()
      else if stripped.[0] = '.' then
        match parse_directive ln stripped with
        | `Lit (n, v) -> literals := (n, v) :: !literals
        | `Words (n, ws) ->
          let bytes = Array.make (4 * Array.length ws) 0 in
          Array.iteri
            (fun k w ->
              for b = 0 to 3 do
                bytes.((4 * k) + b) <- (w lsr (8 * b)) land 0xff
              done)
            ws;
          data := { Program.dname = n; daddr = None; dbytes = bytes } :: !data
        | `Bytes (n, addr, bs) ->
          data := { Program.dname = n; daddr = addr; dbytes = bs } :: !data
      else items := List.rev_append (parse_line ln line) !items)
    lines;
  { Program.pname = name;
    items = List.rev !items;
    literals = List.rev !literals;
    data = List.rev !data }
