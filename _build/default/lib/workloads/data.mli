(** Workload data sets and Galois-field helpers. *)

val words : seed:int -> int -> int array
(** Random 32-bit words. *)

val bytes : seed:int -> int -> int array
(** Random bytes. *)

val small_words : seed:int -> max:int -> int -> int array
(** Random words in [1, max]. *)

(** GF(2^8) arithmetic with the Reed-Solomon polynomial 0x11d, used both
    to build the lookup tables shipped to the TIE extensions and by the
    host-side oracles in the test suite. *)
module Gf : sig
  val mul : int -> int -> int

  (** log of 1..255; index 0 unused (0). *)
  val log_table : int array

  (** 512 entries so lookups avoid mod 255. *)
  val alog_table : int array

  val pow : int -> int -> int
end

val des_sbox : int array
(** A 256-entry 8-bit substitution box (derived from DES S-box S1,
    expanded to byte width). *)
