module M = struct
  let accept_errors reason =
    Obs.Metrics.counter
      ~labels:[ ("reason", reason) ]
      ~help:"accept() failures retried by the serve loop"
      "serve_accept_errors_total"

  let connections =
    lazy
      (Obs.Metrics.counter ~help:"connections accepted by the serve loop"
         "serve_connections_total")

  let active =
    lazy
      (Obs.Metrics.gauge ~help:"connections currently being served"
         "serve_active_connections")
end

(* Is a daemon alive behind this socket path?  [connect] succeeding
   means a listener accepted us — refuse to start.  [ECONNREFUSED]
   means the file is a corpse left by a daemon that died without
   cleanup, [ENOENT] that it vanished meanwhile: both safe to replace.
   Unconditionally unlinking (as this server once did) would defeat
   bind's EADDRINUSE protection and silently steal a live daemon's
   socket out from under it. *)
let probe_live socket =
  Sys.file_exists socket
  && begin
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () ->
           try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           match Unix.connect fd (Unix.ADDR_UNIX socket) with
           | () -> true
           | exception
               Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
             false)
     end

let handle_conn router ~io_timeout_s conn =
  (* Non-blocking, so the protocol's select-guarded deadlines bound
     every read *and* write chunk — a client that stops reading its
     response cannot wedge this handler past [io_timeout_s]. *)
  (try Unix.set_nonblock conn with Unix.Unix_error _ -> ());
  let rec loop () =
    let deadline = Unix.gettimeofday () +. io_timeout_s in
    match Protocol.read_frame ~deadline conn with
    | None -> ()
    | Some payload ->
      let received = Unix.gettimeofday () in
      let resp = Router.handle_text ~received router payload in
      let deadline = Unix.gettimeofday () +. io_timeout_s in
      Protocol.write_frame ~deadline conn resp;
      if not (Router.stopped router) then loop ()
  in
  try loop () with
  | Protocol.Frame_error msg ->
    Obs.Log.event ~level:Obs.Log.Warn "serve:frame-error"
      [ ("error", Obs.Trace.S msg) ]
  | Unix.Unix_error (e, _, _) ->
    (* EPIPE/ECONNRESET: the client hung up mid-response.  With SIGPIPE
       ignored this is a per-connection warning, never daemon death. *)
    Obs.Log.event ~level:Obs.Log.Warn "serve:io-error"
      [ ("error", Obs.Trace.S (Unix.error_message e)) ]

let run ?(io_timeout_s = 10.0) ?(backlog = 16) ?(max_conns = 8) ~socket router
    =
  if max_conns < 1 then invalid_arg "Server.run: max_conns must be >= 1";
  Obs.Metrics.set_enabled true;
  (* A client can disappear between our read and our write; without
     this, the resulting SIGPIPE kills the whole daemon instead of
     surfacing as a per-connection EPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Register every serve-loop metric family before threads exist (the
     registry's table is then never resized concurrently) — and so a
     scrape shows the error counters at 0 rather than absent. *)
  List.iter
    (fun reason -> ignore (M.accept_errors reason))
    [ "aborted"; "fd-exhausted" ];
  ignore (Lazy.force M.connections);
  ignore (Lazy.force M.active);
  if probe_live socket then
    raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", socket));
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listener (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener backlog;
  (* Per-thread scopes: each connection thread labels its own log
     records, carries its own per-request backend override, and keeps
     its own trace context. *)
  Obs.Log.set_correlation_key (fun () -> Thread.id (Thread.self ()));
  Sim.Backend.set_scope_key (fun () -> Thread.id (Thread.self ()));
  Obs.Trace.set_context_key (fun () -> Thread.id (Thread.self ()));
  Obs.Log.event "serve:start"
    [ ("socket", Obs.Trace.S socket);
      ("io_timeout_s", Obs.Trace.F io_timeout_s);
      ("max_conns", Obs.Trace.I max_conns) ];
  let lock = Mutex.create () in
  let active = ref 0 in
  let accepted = ref 0 in
  let current_active () =
    Mutex.lock lock;
    let n = !active in
    Mutex.unlock lock;
    n
  in
  let adjust_active d =
    Mutex.lock lock;
    active := !active + d;
    let n = !active in
    Mutex.unlock lock;
    Obs.Metrics.set (Lazy.force M.active) (float_of_int n)
  in
  let spawn conn =
    incr accepted;
    Obs.Metrics.inc (Lazy.force M.connections);
    let corr = Printf.sprintf "req-%d-%d" (Unix.getpid ()) !accepted in
    adjust_active 1;
    let serve () =
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close conn with Unix.Unix_error _ -> ());
          adjust_active (-1))
        (fun () ->
          Obs.Log.with_correlation corr (fun () ->
              handle_conn router ~io_timeout_s conn))
    in
    match Thread.create serve () with
    | (_ : Thread.t) -> ()
    | exception e ->
      (* Thread exhaustion: shed this connection, keep the daemon. *)
      (try Unix.close conn with Unix.Unix_error _ -> ());
      adjust_active (-1);
      Obs.Log.event ~level:Obs.Log.Warn "serve:spawn-error"
        [ ("error", Obs.Trace.S (Printexc.to_string e)) ]
  in
  let rec accept_loop () =
    if not (Router.stopped router) then
      if current_active () >= max_conns then begin
        (* At the bound: pending clients queue in the listen backlog
           until a handler finishes. *)
        Unix.sleepf 0.01;
        accept_loop ()
      end
      else
        (* Wake at least every 250 ms: a shutdown request is handled on
           a connection thread, and this loop must notice it without
           another client connecting. *)
        match Unix.select [ listener ] [] [] 0.25 with
        | [], _, _ -> accept_loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | _ :: _, _, _ -> (
          match Unix.accept listener with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
            (* The client gave up between connect and accept; nothing
               to serve, nothing to crash over. *)
            Obs.Metrics.inc (M.accept_errors "aborted");
            accept_loop ()
          | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _)
            ->
            (* Out of descriptors: back off briefly so in-flight
               handlers can close theirs, then try again — crashing
               the accept loop would turn transient fd pressure into
               an outage. *)
            Obs.Metrics.inc (M.accept_errors "fd-exhausted");
            Obs.Log.event ~level:Obs.Log.Warn "serve:accept-error"
              [ ("error", Obs.Trace.S (Unix.error_message e)) ];
            Unix.sleepf 0.05;
            accept_loop ()
          | conn, _ ->
            spawn conn;
            accept_loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      (* Give in-flight connection threads a bounded grace to finish
         answering before the router (pool, cache index) is torn down
         under them; a thread still wedged on a dead client past this
         hits its own I/O deadline and exits harmlessly. *)
      let give_up = Unix.gettimeofday () +. 2.0 in
      while current_active () > 0 && Unix.gettimeofday () < give_up do
        Unix.sleepf 0.01
      done;
      Router.shutdown router;
      Obs.Log.event "serve:stop"
        [ ("connections", Obs.Trace.I !accepted) ])
    accept_loop
