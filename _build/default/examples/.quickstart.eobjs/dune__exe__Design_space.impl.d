examples/design_space.ml: Core Format List Power Workloads
