type meta = {
  m_key : string;
  m_name : string;
  m_size : int;
  m_last_used : float;
}

type t = (string, meta) Hashtbl.t

let index_basename = "index.json"

let index_path dir = Filename.concat dir index_basename

let file_of_key k = k ^ ".json"

let is_hex_digest s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let key_of_entry_file fname =
  if fname <> index_basename && Filename.check_suffix fname ".json" then begin
    let stem = Filename.chop_suffix fname ".json" in
    if is_hex_digest stem then Some stem else None
  end
  else None

let create () : t = Hashtbl.create 64

let record t m = Hashtbl.replace t m.m_key m

let remove t k = Hashtbl.remove t k

let find t k = Hashtbl.find_opt t k

let count t = Hashtbl.length t

let total_bytes t = Hashtbl.fold (fun _ m acc -> acc + m.m_size) t 0

(* Oldest first; ties break by key so plans are deterministic. *)
let entries t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t []
  |> List.sort (fun a b ->
         match compare a.m_last_used b.m_last_used with
         | 0 -> compare a.m_key b.m_key
         | c -> c)

(* --- On-disk document ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"format\": \"xenergy-cache-index\",\n";
  Buffer.add_string b "  \"version\": 1,\n";
  Buffer.add_string b "  \"entries\": [";
  List.iteri
    (fun i m ->
      Printf.bprintf b "%s\n    {\"key\": \"%s\", \"name\": \"%s\", \
                        \"size\": %d, \"last_used\": %.6f}"
        (if i = 0 then "" else ",")
        m.m_key (json_escape m.m_name) m.m_size m.m_last_used)
    (entries t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let load dir =
  match
    In_channel.with_open_text (index_path dir) In_channel.input_all
  with
  | exception Sys_error _ -> None
  | s -> (
    match
      let j = Obs.Json.parse s in
      if Obs.Json.(to_string (member "format" j)) <> "xenergy-cache-index"
      then failwith "index: bad format";
      if Obs.Json.(to_int (member "version" j)) <> 1 then
        failwith "index: unsupported version";
      let t = create () in
      List.iter
        (fun e ->
          let key = Obs.Json.(to_string (member "key" e)) in
          if not (is_hex_digest key) then failwith "index: bad key";
          record t
            { m_key = key;
              m_name = Obs.Json.(to_string (member "name" e));
              m_size = Obs.Json.(to_int (member "size" e));
              m_last_used = Obs.Json.(to_float (member "last_used" e)) })
        Obs.Json.(to_list (member "entries" j));
      t
    with
    | t -> Some t
    | exception _ -> None)

let stat_meta dir fname key =
  match Unix.stat (Filename.concat dir fname) with
  | st ->
    Some
      { m_key = key;
        m_name = "";
        m_size = st.Unix.st_size;
        m_last_used = st.Unix.st_mtime }
  | exception Unix.Unix_error _ -> None

let rebuild dir =
  let t = create () in
  (match Sys.readdir dir with
  | files ->
    Array.iter
      (fun fname ->
        match key_of_entry_file fname with
        | None -> ()
        | Some key -> Option.iter (record t) (stat_meta dir fname key))
      files
  | exception Sys_error _ -> ());
  t

let load_or_rebuild dir =
  match load dir with Some t -> (t, false) | None -> (rebuild dir, true)

let reconcile dir t =
  let on_disk = Hashtbl.create 64 in
  (match Sys.readdir dir with
  | files ->
    Array.iter
      (fun fname ->
        match key_of_entry_file fname with
        | None -> ()
        | Some key -> Hashtbl.replace on_disk key fname)
      files
  | exception Sys_error _ -> ());
  let added = ref 0 and dropped = ref 0 in
  (* Drop index entries whose file is gone. *)
  let stale =
    Hashtbl.fold
      (fun k _ acc -> if Hashtbl.mem on_disk k then acc else k :: acc)
      t []
  in
  List.iter (fun k -> remove t k; incr dropped) stale;
  (* Adopt unindexed files, and correct recorded sizes against reality
     (the last-used time is the index's own knowledge and survives). *)
  Hashtbl.iter
    (fun key fname ->
      match find t key with
      | None ->
        Option.iter (fun m -> record t m; incr added) (stat_meta dir fname key)
      | Some m -> (
        match stat_meta dir fname key with
        | Some fresh when fresh.m_size <> m.m_size ->
          record t { m with m_size = fresh.m_size }
        | Some _ | None -> ()))
    on_disk;
  (!added, !dropped)

let save dir t =
  let doc = to_json t in
  let tmp = Filename.temp_file ~temp_dir:dir "index" ".tmp" in
  try
    Out_channel.with_open_text tmp (fun oc ->
        Out_channel.output_string oc doc);
    (* Shared cache directories: the index must be readable by every
       cooperating user, not just the creator of the temp file. *)
    Unix.chmod tmp 0o644;
    Sys.rename tmp (index_path dir)
  with exn ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn

let plan_eviction ~now ?max_entries ?max_bytes ?max_age_s t =
  let newest_first = List.rev (entries t) in
  let too_old m =
    match max_age_s with
    | None -> false
    | Some age -> now -. m.m_last_used > age
  in
  let _, _, evicted =
    List.fold_left
      (fun (kept, kept_bytes, evicted) m ->
        let over_count =
          match max_entries with Some n -> kept >= n | None -> false
        in
        let over_bytes =
          match max_bytes with
          | Some b -> kept_bytes + m.m_size > b
          | None -> false
        in
        if over_count || over_bytes || too_old m then
          (kept, kept_bytes, m :: evicted)
        else (kept + 1, kept_bytes + m.m_size, evicted))
      (0, 0, []) newest_first
  in
  (* Oldest first, matching [entries] order. *)
  evicted
