(** Architectural registers of the base processor.

    The base core exposes a window of 16 address registers [a0]..[a15]
    over a 64-entry physical register file, in the style of the Xtensa
    windowed ABI.  Custom (TIE) state lives in separate custom registers,
    identified by index within the extension's state block. *)

type t = A of int  (** [A n] is address register [a{n}], [0 <= n <= 15]. *)

val a : int -> t
(** [a n] builds register [a{n}].  @raise Invalid_argument unless
    [0 <= n <= 15]. *)

val index : t -> int
(** Window-relative index of the register (0..15). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val all : t list
(** All sixteen architectural registers, in order. *)
