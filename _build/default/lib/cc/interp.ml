exception Interp_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Interp_error s)) fmt

type result = {
  r_return : int;
  r_globals : (string * int array) list;
}

exception Returned of int

let u32 v = v land 0xffff_ffff

let s32 v =
  let v = u32 v in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

type state = {
  globals : (string, int array) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable fuel : int;
}

let spend st =
  if st.fuel <= 0 then fail "out of fuel (non-terminating program?)";
  st.fuel <- st.fuel - 1

let rec eval st locals e =
  match e with
  | Ast.Const v -> u32 v
  | Ast.Var name -> (
    match Hashtbl.find_opt locals name with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt st.globals name with
      | Some arr -> arr.(0)
      | None -> fail "unknown variable %S" name))
  | Ast.Index (name, idx) -> (
    match Hashtbl.find_opt st.globals name with
    | Some arr ->
      let i = eval st locals idx in
      if i >= Array.length arr then
        fail "%s[%d]: out of range" name i
      else arr.(i)
    | None -> fail "unknown array %S" name)
  | Ast.Unop (Ast.Neg, e) -> u32 (-eval st locals e)
  | Ast.Unop (Ast.Not, e) -> u32 (lnot (eval st locals e))
  | Ast.Unop (Ast.Lnot, e) -> if eval st locals e = 0 then 1 else 0
  | Ast.Binop (Ast.Land, a, b) ->
    if eval st locals a = 0 then 0
    else if eval st locals b = 0 then 0
    else 1
  | Ast.Binop (Ast.Lor, a, b) ->
    if eval st locals a <> 0 then 1
    else if eval st locals b <> 0 then 1
    else 0
  | Ast.Binop (op, a, b) ->
    let x = eval st locals a in
    let y = eval st locals b in
    let bool_ c = if c then 1 else 0 in
    u32
      (match op with
       | Ast.Add -> x + y
       | Ast.Sub -> x - y
       | Ast.Mul -> x * y
       | Ast.Div -> if y = 0 then fail "division by zero" else x / y
       | Ast.Mod -> if y = 0 then fail "division by zero" else x mod y
       | Ast.And -> x land y
       | Ast.Or -> x lor y
       | Ast.Xor -> x lxor y
       | Ast.Shl -> x lsl (y land 31)
       | Ast.Shr -> s32 x asr (y land 31)
       | Ast.Lt -> bool_ (s32 x < s32 y)
       | Ast.Gt -> bool_ (s32 x > s32 y)
       | Ast.Le -> bool_ (s32 x <= s32 y)
       | Ast.Ge -> bool_ (s32 x >= s32 y)
       | Ast.Eq -> bool_ (x = y)
       | Ast.Ne -> bool_ (x <> y)
       | Ast.Land | Ast.Lor -> assert false)
  | Ast.Call (name, _) when String.length name > 6
                            && String.sub name 0 6 = "__tie_" ->
    fail "intrinsic %s is not interpretable" name
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt st.funcs name with
    | None -> fail "unknown function %S" name
    | Some f ->
      if List.length args <> List.length f.Ast.params then
        fail "%s: arity mismatch" name;
      let values = List.map (eval st locals) args in
      call st f values)

and call st f values =
  let locals = Hashtbl.create 8 in
  List.iter2 (Hashtbl.replace locals) f.Ast.params values;
  try
    List.iter (exec st locals) f.Ast.body;
    0 (* falling off the end returns 0, as in the code generator *)
  with Returned v -> v

and exec st locals stmt =
  spend st;
  match stmt with
  | Ast.Expr e -> ignore (eval st locals e)
  | Ast.Decl (name, init) -> (
    match init with
    | Some e -> Hashtbl.replace locals name (eval st locals e)
    | None ->
      (* The code generator leaves uninitialised slots alone (their
         content is whatever the stack holds), so only create the
         binding if it does not exist yet. *)
      if not (Hashtbl.mem locals name) then Hashtbl.replace locals name 0)
  | Ast.Assign (name, e) ->
    let v = eval st locals e in
    if Hashtbl.mem locals name then Hashtbl.replace locals name v
    else (
      match Hashtbl.find_opt st.globals name with
      | Some arr -> arr.(0) <- v
      | None -> fail "unknown variable %S" name)
  | Ast.Store (name, idx, e) -> (
    match Hashtbl.find_opt st.globals name with
    | Some arr ->
      let i = eval st locals idx in
      if i >= Array.length arr then fail "%s[%d]: out of range" name i
      else arr.(i) <- eval st locals e
    | None -> fail "unknown array %S" name)
  | Ast.If (cond, then_, else_) ->
    if eval st locals cond <> 0 then List.iter (exec st locals) then_
    else List.iter (exec st locals) else_
  | Ast.While (cond, body) ->
    while eval st locals cond <> 0 do
      spend st;
      List.iter (exec st locals) body
    done
  | Ast.For (init, cond, step, body) ->
    Option.iter (exec st locals) init;
    let continue_ () =
      match cond with Some c -> eval st locals c <> 0 | None -> true
    in
    while continue_ () do
      spend st;
      List.iter (exec st locals) body;
      Option.iter (exec st locals) step
    done
  | Ast.Return None -> raise (Returned 0)
  | Ast.Return (Some e) -> raise (Returned (eval st locals e))

let run ?(fuel = 1_000_000) (prog : Ast.program) =
  let st =
    { globals = Hashtbl.create 8; funcs = Hashtbl.create 8; fuel }
  in
  List.iter
    (fun (g : Ast.global) ->
      let arr = Array.make g.Ast.gsize 0 in
      List.iteri (fun i v -> if i < g.Ast.gsize then arr.(i) <- u32 v)
        g.Ast.ginit;
      Hashtbl.replace st.globals g.Ast.gname arr)
    prog.Ast.globals;
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace st.funcs f.Ast.fname f)
    prog.Ast.funcs;
  let main =
    match Hashtbl.find_opt st.funcs "main" with
    | Some f -> f
    | None -> fail "no main function"
  in
  let r_return = call st main [] in
  let r_globals =
    List.map
      (fun (g : Ast.global) ->
        (g.Ast.gname, Hashtbl.find st.globals g.Ast.gname))
      prog.Ast.globals
  in
  { r_return; r_globals }
