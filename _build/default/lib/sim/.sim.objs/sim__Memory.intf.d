lib/sim/memory.mli:
