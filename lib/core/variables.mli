(** The 21 macro-model variables.

    Eleven instruction-level variables characterize the base core —
    cycles per instruction class (arith, load, store, jump, branch taken,
    branch untaken), dynamic-effect counts (instruction-cache misses,
    data-cache misses, uncached instruction fetches, interlocks) and the
    register-file side-effect cycles of custom instructions — and ten
    structural variables give the complexity-weighted active cycles of
    each custom-hardware component category. *)

type id =
  | Arith
  | Load
  | Store
  | Jump
  | Branch_taken
  | Branch_untaken
  | Icache_miss
  | Dcache_miss
  | Uncached_fetch
  | Interlock
  | Custom_side
  | Category of Tie.Component.category

val all : id list
(** All 21 variables, in canonical (Table I) order: the 11 base-ISA
    variables first, then one [Category _] per component category. *)

val count : int
(** [List.length all], i.e. 21. *)

val base_count : int
(** Number of non-[Category] variables; these occupy vector indices
    [0 .. base_count - 1], so an extension-less fold may stop there. *)

val index : id -> int
(** Position of a variable in {!all} (the vector/coefficient index). *)

val of_index : int -> id
(** @raise Invalid_argument if out of range. *)

val name : id -> string
(** Short symbol, e.g. ["c_arith"], ["x_mult"]. *)

val describe : id -> string
(** Table I style description. *)

val is_structural : id -> bool
(** [true] for the ten [Category _] (custom-hardware) variables. *)
