type cmpop = Clt | Cltu | Ceq

type redop = Rand | Ror | Rxor

type t =
  | Arg of string
  | State of string
  | Const of int * int
  | Mul of t * t
  | Add of t * t
  | Sub of t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Not of t
  | Reduce of redop * t
  | Mux of t * t * t
  | Shl of t * t
  | Shr of t * t
  | Sar of t * t
  | Table of string * t
  | Concat of t * t
  | Extract of t * int * int
  | Tie_mult of t * t
  | Tie_mac of t * t * t
  | Tie_add of t * t * t
  | Tie_csa of t * t * t

type ctx = {
  arg_width : string -> int;
  state_width : string -> int;
  table_shape : string -> int * int;
}

exception Width_error of string

let werr fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let clamp_width w = if w > 64 then werr "width %d exceeds 64 bits" w else w

let rec width ctx e =
  match e with
  | Arg name -> ctx.arg_width name
  | State name -> ctx.state_width name
  | Const (_, w) ->
    if w <= 0 || w > 64 then werr "constant width %d out of range" w else w
  | Mul (a, b) | Tie_mult (a, b) ->
    clamp_width (width ctx a + width ctx b)
  | Add (a, b) | Sub (a, b) -> clamp_width (max (width ctx a) (width ctx b))
  | Cmp (_, a, b) ->
    ignore (width ctx a); ignore (width ctx b); 1
  | And (a, b) | Or (a, b) | Xor (a, b) ->
    max (width ctx a) (width ctx b)
  | Not a -> width ctx a
  | Reduce (_, a) -> ignore (width ctx a); 1
  | Mux (sel, a, b) ->
    ignore (width ctx sel);
    max (width ctx a) (width ctx b)
  | Shl (a, b) | Shr (a, b) | Sar (a, b) ->
    ignore (width ctx b); width ctx a
  | Table (name, idx) ->
    ignore (width ctx idx);
    snd (ctx.table_shape name)
  | Concat (hi, lo) -> clamp_width (width ctx hi + width ctx lo)
  | Extract (a, lo, w) ->
    let wa = width ctx a in
    if lo < 0 || w <= 0 || lo + w > 64 then
      werr "extract [%d +%d] out of range" lo w
    else if lo >= wa then werr "extract low bit %d beyond source width %d" lo wa
    else w
  | Tie_mac (a, b, c) ->
    clamp_width (max (width ctx a + width ctx b) (width ctx c) + 1)
  | Tie_add (a, b, c) | Tie_csa (a, b, c) ->
    clamp_width (max (width ctx a) (max (width ctx b) (width ctx c)) + 1)

type env = {
  arg : string -> int;
  state : string -> int;
  table : string -> int -> int;
}

let mask w v = if w >= 63 then v else v land ((1 lsl w) - 1)

let rec eval ctx env e =
  let w = width ctx e in
  let v =
    match e with
    | Arg name -> env.arg name
    | State name -> env.state name
    | Const (v, _) -> v
    | Mul (a, b) | Tie_mult (a, b) -> eval ctx env a * eval ctx env b
    | Add (a, b) -> eval ctx env a + eval ctx env b
    | Sub (a, b) -> eval ctx env a - eval ctx env b
    | Cmp (op, a, b) ->
      let va = eval ctx env a and vb = eval ctx env b in
      let signed x wid =
        let m = mask wid x in
        if wid < 63 && m land (1 lsl (wid - 1)) <> 0 then m - (1 lsl wid)
        else m
      in
      let wa = width ctx a and wb = width ctx b in
      let r =
        match op with
        | Ceq -> va = vb
        | Cltu -> va < vb
        | Clt -> signed va wa < signed vb wb
      in
      if r then 1 else 0
    | And (a, b) -> eval ctx env a land eval ctx env b
    | Or (a, b) -> eval ctx env a lor eval ctx env b
    | Xor (a, b) -> eval ctx env a lxor eval ctx env b
    | Not a -> lnot (eval ctx env a)
    | Reduce (op, a) ->
      let v = eval ctx env a and wa = width ctx a in
      let rec bits i acc =
        if i >= wa then acc else bits (i + 1) (((v lsr i) land 1) :: acc)
      in
      let bs = bits 0 [] in
      let r =
        match op with
        | Rand -> List.for_all (fun b -> b = 1) bs
        | Ror -> List.exists (fun b -> b = 1) bs
        | Rxor -> List.fold_left ( lxor ) 0 bs = 1
      in
      if r then 1 else 0
    | Mux (sel, a, b) ->
      if eval ctx env sel <> 0 then eval ctx env a else eval ctx env b
    | Shl (a, b) -> eval ctx env a lsl (eval ctx env b land 63)
    | Shr (a, b) -> eval ctx env a lsr (eval ctx env b land 63)
    | Sar (a, b) ->
      let wa = width ctx a in
      let va = eval ctx env a in
      let signed =
        if wa < 63 && va land (1 lsl (wa - 1)) <> 0 then va - (1 lsl wa)
        else va
      in
      signed asr (eval ctx env b land 63)
    | Table (name, idx) ->
      let entries, _ = ctx.table_shape name in
      env.table name (eval ctx env idx mod entries)
    | Concat (hi, lo) ->
      let wlo = width ctx lo in
      (eval ctx env hi lsl wlo) lor eval ctx env lo
    | Extract (a, lo, _) -> eval ctx env a lsr lo
    | Tie_mac (a, b, c) -> (eval ctx env a * eval ctx env b) + eval ctx env c
    | Tie_add (a, b, c) | Tie_csa (a, b, c) ->
      eval ctx env a + eval ctx env b + eval ctx env c
  in
  mask w v

let subexprs = function
  | Arg _ | State _ | Const _ -> []
  | Not a | Reduce (_, a) | Table (_, a) | Extract (a, _, _) -> [ a ]
  | Mul (a, b) | Add (a, b) | Sub (a, b) | Cmp (_, a, b)
  | And (a, b) | Or (a, b) | Xor (a, b)
  | Shl (a, b) | Shr (a, b) | Sar (a, b)
  | Concat (a, b) | Tie_mult (a, b) ->
    [ a; b ]
  | Mux (a, b, c) | Tie_mac (a, b, c) | Tie_add (a, b, c)
  | Tie_csa (a, b, c) ->
    [ a; b; c ]

let rec fold f acc e =
  List.fold_left (fold f) (f acc e) (subexprs e)

let node_delay = function
  | Arg _ | State _ | Const _ | Concat _ | Extract _ -> 0.0
  | Mul _ | Tie_mult _ -> 3.0
  | Tie_mac _ -> 3.5
  | Add _ | Sub _ | Cmp _ | Tie_add _ -> 1.0
  | Tie_csa _ -> 0.5
  | And _ | Or _ | Xor _ | Not _ | Mux _ -> 0.3
  | Reduce _ -> 0.8
  | Shl _ | Shr _ | Sar _ -> 1.0
  | Table _ -> 1.5

let rec depth_delay e =
  let children = subexprs e in
  let deepest = List.fold_left (fun m c -> Float.max m (depth_delay c)) 0.0 children in
  node_delay e +. deepest
