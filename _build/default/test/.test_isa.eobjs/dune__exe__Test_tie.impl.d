test/test_tie.ml: Alcotest List Option QCheck QCheck_alcotest Tie Workloads
