(** Instruction-level execution statistics.

    An observer accumulating exactly the instruction-level quantities the
    macro-model needs: cycles per base instruction class, dynamic-effect
    counts (cache misses, uncached fetches, interlocks) and the
    register-file side-effect cycles of custom instructions. *)

type t = {
  mutable arith_cycles : int;
  mutable load_cycles : int;
  mutable store_cycles : int;
  mutable jump_cycles : int;
  mutable branch_taken_cycles : int;
  mutable branch_untaken_cycles : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable uncached_fetches : int;
  mutable interlocks : int;
  mutable stall_cycles : int;
  (** total operand-dependency stall cycles across all interlocks *)
  mutable custom_regfile_cycles : int;
  (** cycles of custom instructions that access the generic register file
      (the paper's side-effect variable) *)
  mutable custom_cycles : int;     (** total custom-instruction busy cycles *)
  mutable instructions : int;
  mutable total_cycles : int;
  taken_penalty : int;  (** from the configuration, for cycle attribution *)
}

val create : Config.t -> t

val observe : t -> Event.t -> unit

val observer : t -> Cpu.observer

val reset : t -> unit

val pp : Format.formatter -> t -> unit
