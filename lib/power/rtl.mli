(** Compiled-RTL-style activity simulation of the base core.

    The reference estimator's fidelity (and its cost) comes from here: in
    the style of a compiled-code RTL simulator, every cycle re-evaluates
    the full structural datapath bit by bit — program-counter carry
    chain, opcode and register-port one-hot decoders, cache set decoders,
    per-way tag comparators against shadow cache state, data-array output
    latches, the five-stage pipeline register file and the (possibly
    idle) execution units — and counts net toggles.  Idle units are still
    evaluated (their nets simply do not toggle), exactly as a
    compiled-RTL simulator would.

    Energy is toggles times per-net coefficients; calibration constants
    live in {!Blocks}.

    Net vectors are packed into native integers (toggle counts are
    Hamming distances, one-hot decoders are represented by their selected
    index), which is bit-exact with a one-net-per-byte evaluation — the
    toggle counts and the {!evaluations} cost metric are unchanged — but
    keeps the per-cycle work to a handful of word operations. *)

type t

type access_activity = {
  decode_toggles : int;   (** set decoder one-hot nets *)
  tag_toggles : int;      (** per-way tag comparator nets *)
  array_toggles : int;    (** data-array output latch nets *)
}

val create : Sim.Config.t -> t

val cycle_activity :
  t ->
  word:int ->
  pc:int ->
  op1:int ->
  op2:int ->
  result:int ->
  int
(** Evaluate one clock edge of the pipeline registers, the PC
    incrementer and the instruction decoder; returns latch-net toggle
    count.  Must be called once per simulated cycle (hold cycles repeat
    the previous values). *)

val regfile_activity : t -> reads:int list -> write:int option -> int
(** One-hot port-decoder toggles for the given physical register
    numbers. *)

val icache_activity : t -> int -> access_activity
(** Evaluate an instruction-cache access at an address.  Maintains a
    shadow cache in lockstep with the simulator's (same configuration,
    same access sequence, hence identical contents). *)

val dcache_activity : t -> int -> value:int -> access_activity

val idle_unit_evaluations : t -> unit
(** Evaluate the execution units that did not fire this cycle (ALU,
    shifter, multiplier see latched inputs; zero toggles but full
    evaluation cost, as in compiled-RTL simulation). *)

val evaluations : t -> int
(** Total elementary net evaluations performed so far (a cost metric
    exposed for the tests and the speedup experiment's sanity checks). *)

val regfile_cells : t -> write:(int * int) option -> unit
(** Clock the 64x32 register-file flop plane (optionally committing one
    write of (physical register, value)); evaluated every cycle. *)
