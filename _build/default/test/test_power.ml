(* Tests for the reference power model: activity primitives, gate-level
   unit models, the RTL activity simulator and the estimator. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* --- Activity ------------------------------------------------------------ *)

let naive_popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let qcheck_popcount =
  QCheck.Test.make ~name:"popcount matches naive loop" ~count:500
    QCheck.(int_bound max_int)
    (fun v -> Power.Activity.popcount v = naive_popcount v)

let test_toggles () =
  check Alcotest.int "identical values" 0 (Power.Activity.toggles 0xffff 0xffff);
  check Alcotest.int "one bit" 1 (Power.Activity.toggles 0 1);
  check Alcotest.int "byte flip" 8 (Power.Activity.toggles 0x00 0xff)

let test_density () =
  check (Alcotest.float 1e-9) "half ones" 0.5
    (Power.Activity.density 0x0f ~width:8);
  check (Alcotest.float 1e-9) "empty width" 0.0
    (Power.Activity.density 0xff ~width:0)

(* --- Gates --------------------------------------------------------------- *)

let test_adder_stability () =
  let st = Power.Gates.adder_create 32 in
  ignore (Power.Gates.adder_eval st 123 456);
  check Alcotest.int "repeated inputs do not toggle" 0
    (Power.Gates.adder_eval st 123 456);
  check Alcotest.bool "new inputs toggle" true
    (Power.Gates.adder_eval st 999 111 > 0)

let test_mult_scales_with_width () =
  let mean w =
    let st = Power.Gates.mult_create w in
    let g = Workloads.Prng.create 5 in
    let acc = ref 0 in
    for _ = 1 to 200 do
      acc :=
        !acc
        + Power.Gates.mult_eval st
            (Workloads.Prng.int32 g land Power.Activity.mask w)
            (Workloads.Prng.int32 g land Power.Activity.mask w)
    done;
    float_of_int !acc /. 200.0
  in
  check Alcotest.bool "32-bit multiplier toggles ~4x the 16-bit one" true
    (mean 32 /. mean 16 > 3.0)

let test_table_determinism () =
  let st1 = Power.Gates.table_create ~entries:256 ~width:8 in
  let st2 = Power.Gates.table_create ~entries:256 ~width:8 in
  let seq = [ (3, 7); (200, 1); (3, 7); (77, 99) ] in
  List.iter
    (fun (i, v) ->
      check Alcotest.int "same sequence, same toggles"
        (Power.Gates.table_eval st1 i v)
        (Power.Gates.table_eval st2 i v))
    seq

(* --- Rtl ----------------------------------------------------------------- *)

let test_rtl_hold_cycles_do_not_toggle () =
  let rtl = Power.Rtl.create Sim.Config.default in
  let t1 =
    Power.Rtl.cycle_activity rtl ~word:0x123456 ~pc:0x2000 ~op1:1 ~op2:2
      ~result:3
  in
  check Alcotest.bool "first edge toggles" true (t1 > 0);
  (* Identical inputs: the new stage-0 latch holds, but stages 1..4 shift
     old contents; after five identical edges everything is stable. *)
  for _ = 1 to 5 do
    ignore
      (Power.Rtl.cycle_activity rtl ~word:0x123456 ~pc:0x2000 ~op1:1 ~op2:2
         ~result:3)
  done;
  check Alcotest.int "pipeline full of identical state" 0
    (Power.Rtl.cycle_activity rtl ~word:0x123456 ~pc:0x2000 ~op1:1 ~op2:2
       ~result:3)

let test_rtl_evaluation_cost () =
  let rtl = Power.Rtl.create Sim.Config.default in
  let before = Power.Rtl.evaluations rtl in
  ignore
    (Power.Rtl.cycle_activity rtl ~word:1 ~pc:0x2000 ~op1:0 ~op2:0 ~result:0);
  Power.Rtl.idle_unit_evaluations rtl;
  Power.Rtl.regfile_cells rtl ~write:None;
  let per_cycle = Power.Rtl.evaluations rtl - before in
  (* A compiled-RTL cycle must evaluate thousands of nets. *)
  check Alcotest.bool "thousands of net evaluations per cycle" true
    (per_cycle > 4000)

let test_rtl_cache_activity () =
  let rtl = Power.Rtl.create Sim.Config.default in
  let a1 = Power.Rtl.icache_activity rtl 0x2000 in
  check Alcotest.bool "first access exercises the arrays" true
    (a1.Power.Rtl.array_toggles > 0);
  let a2 = Power.Rtl.icache_activity rtl 0x2000 in
  check Alcotest.int "repeated access leaves arrays quiet" 0
    a2.Power.Rtl.array_toggles

(* --- Estimator ----------------------------------------------------------- *)

let run_with_estimator ?extension build =
  let b = Isa.Builder.create "p" in
  Isa.Builder.label b "main";
  build b;
  Isa.Builder.halt b;
  let asm = Isa.Program.assemble (Isa.Builder.seal b) in
  Power.Estimator.estimate_program ?extension asm

let test_energy_positive_and_monotonic () =
  let open Isa.Builder in
  let short, _ =
    run_with_estimator (fun b -> loop_n b ~cnt:a2 10 (fun () -> nop b))
  in
  let long, _ =
    run_with_estimator (fun b -> loop_n b ~cnt:a2 100 (fun () -> nop b))
  in
  check Alcotest.bool "positive" true (short > 0.0);
  check Alcotest.bool "more work, more energy" true (long > 2.0 *. short)

let test_breakdown_sums_to_total () =
  let open Isa.Builder in
  let b = Isa.Builder.create "p" in
  Isa.Builder.label b "main";
  movi b a2 0x11000;
  l32i b a3 a2 0;
  s32i b a3 a2 4;
  Isa.Builder.halt b;
  let asm = Isa.Program.assemble (Isa.Builder.seal b) in
  let est = Power.Estimator.create Sim.Config.default in
  let _ =
    Sim.Cpu.run_program ~observers:[ Power.Estimator.observer est ] asm
  in
  let total = Power.Estimator.total_energy est in
  let sum =
    List.fold_left (fun acc (_, e) -> acc +. e)
      0.0 (Power.Estimator.breakdown est)
  in
  check (Alcotest.float 1e-6) "breakdown is a partition" total sum;
  check Alcotest.bool "major blocks present" true
    (List.mem_assoc "icache" (Power.Estimator.breakdown est)
     && List.mem_assoc "dcache" (Power.Estimator.breakdown est)
     && List.mem_assoc "clock" (Power.Estimator.breakdown est))

let test_custom_energy_charged () =
  let open Isa.Builder in
  let with_custom, _ =
    run_with_estimator ~extension:Workloads.Tie_lib.mac_ext (fun b ->
        movi b a2 5;
        movi b a3 9;
        loop_n b ~cnt:a4 50 (fun () -> custom b "mac" [ a2; a3 ]))
  in
  let without, _ =
    run_with_estimator (fun b ->
        movi b a2 5;
        movi b a3 9;
        loop_n b ~cnt:a4 50 (fun () -> nop b))
  in
  check Alcotest.bool "custom instructions cost extra" true
    (with_custom > without)

let test_idle_side_effect_charged () =
  let open Isa.Builder in
  (* Identical base-only code; the extension differs.  With bus-facing
     custom hardware installed, base instructions must cost more. *)
  let body b =
    movi b a2 123;
    movi b a3 77;
    loop_n b ~cnt:a4 100 (fun () ->
        add b a5 a2 a3;
        xor b a6 a5 a2)
  in
  let with_ext, _ =
    run_with_estimator ~extension:(Workloads.Tie_lib.coverage
                                     Tie.Component.Shifter) body
  in
  let without, _ = run_with_estimator body in
  check Alcotest.bool "bus-facing idle hardware consumes energy" true
    (with_ext > without *. 1.02)

let test_estimator_determinism () =
  let open Isa.Builder in
  let run () =
    run_with_estimator ~extension:Workloads.Tie_lib.gf_ext (fun b ->
        movi b a2 0x5a;
        movi b a3 0x13;
        loop_n b ~cnt:a4 20 (fun () ->
            custom b "gfmul" ~dst:a5 [ a2; a3 ];
            addi b a2 a2 1))
    |> fst
  in
  check (Alcotest.float 1e-9) "bit-identical energy across runs" (run ())
    (run ())

let test_estimator_reset () =
  let open Isa.Builder in
  let b = Isa.Builder.create "p" in
  (* Non-trivial data so every unit ends the run with dirty nets. *)
  Isa.Builder.words b "rdata" [| 0x5a5aa5a5; 0x13371337 |];
  Isa.Builder.label b "main";
  l32r b a2 "rdata_ptr";
  l32i b a3 a2 0;
  l32i b a5 a2 4;
  mull b a4 a3 a5;
  slli b a6 a4 7;
  add b a7 a6 a3;
  Isa.Builder.halt b;
  Isa.Builder.lit_addr b "rdata_ptr" "rdata";
  let asm = Isa.Program.assemble (Isa.Builder.seal b) in
  let est = Power.Estimator.create Sim.Config.default in
  let run () =
    ignore (Sim.Cpu.run_program ~observers:[ Power.Estimator.observer est ] asm);
    Power.Estimator.total_energy est
  in
  let first = run () in
  Power.Estimator.reset est;
  let second = run () in
  check (Alcotest.float 1e-9) "reset restores the initial state" first second

let test_paper_table1_reference () =
  check Alcotest.int "ten structural reference coefficients" 10
    (List.length Power.Blocks.paper_table1_custom);
  List.iter
    (fun (_, v) ->
      if v <= 0.0 then fail "non-positive reference coefficient")
    Power.Blocks.paper_table1_custom

let test_report_units () =
  check Alcotest.string "pJ" "500.0 pJ"
    (Format.asprintf "%a" Power.Report.pp_energy 500.0);
  check Alcotest.string "nJ" "2.50 nJ"
    (Format.asprintf "%a" Power.Report.pp_energy 2500.0);
  check Alcotest.string "uJ" "3.00 uJ"
    (Format.asprintf "%a" Power.Report.pp_energy 3.0e6);
  check (Alcotest.float 1e-12) "pJ to uJ" 1.5 (Power.Report.to_uj 1.5e6)

let () =
  Alcotest.run "power"
    [ ( "activity",
        [ QCheck_alcotest.to_alcotest qcheck_popcount;
          Alcotest.test_case "toggles" `Quick test_toggles;
          Alcotest.test_case "density" `Quick test_density ] );
      ( "gates",
        [ Alcotest.test_case "adder stability" `Quick test_adder_stability;
          Alcotest.test_case "mult width scaling" `Quick
            test_mult_scales_with_width;
          Alcotest.test_case "table determinism" `Quick
            test_table_determinism ] );
      ( "rtl",
        [ Alcotest.test_case "hold cycles quiet" `Quick
            test_rtl_hold_cycles_do_not_toggle;
          Alcotest.test_case "evaluation cost" `Quick
            test_rtl_evaluation_cost;
          Alcotest.test_case "cache activity" `Quick
            test_rtl_cache_activity ] );
      ( "estimator",
        [ Alcotest.test_case "monotonic" `Quick
            test_energy_positive_and_monotonic;
          Alcotest.test_case "breakdown partition" `Quick
            test_breakdown_sums_to_total;
          Alcotest.test_case "custom energy" `Quick
            test_custom_energy_charged;
          Alcotest.test_case "idle side effect" `Quick
            test_idle_side_effect_charged;
          Alcotest.test_case "determinism" `Quick
            test_estimator_determinism;
          Alcotest.test_case "reset" `Quick test_estimator_reset;
          Alcotest.test_case "paper reference" `Quick
            test_paper_table1_reference;
          Alcotest.test_case "report units" `Quick test_report_units ] ) ]
