(* xenergy: command-line driver for the extensible-processor energy
   estimation flow.

     xenergy list                    show all workloads
     xenergy profile NAME            per-block cycle/energy hotspot profile
                [--top N] [--json]   (conservation-checked), flame-graph
                [--folded FILE]      and annotated-disassembly output;
                [--annotate]         --variables prints the legacy
                [--per-opcode]       macro-model variable profile
     xenergy reference NAME          reference-estimator energy breakdown
     xenergy characterize [-o FILE]  fit the macro-model (Table I / Fig 3)
                [--trace FILE]       Chrome trace of the whole pipeline
                [--metrics FILE]     metrics registry dump (JSON)
     xenergy estimate NAME [-m FILE] macro-model energy of one workload
     xenergy attribute NAME [-m FILE] per-variable energy breakdown +
                                      power-over-time waveform
     xenergy compare [-m FILE]       Table II accuracy comparison
     xenergy rs [-m FILE]            Fig 4 design-space study
     xenergy disasm NAME             disassembly listing
     xenergy breakdown NAME          per-block reference-energy breakdown
     xenergy trace NAME [-n N]       per-instruction execution/energy trace
     xenergy run FILE.s [-e EXT]     assemble/simulate/estimate a .s file
     xenergy cc FILE.c [-e EXT]      compile/simulate/estimate a Tiny-C file
     xenergy explore [--progress]    sweep a candidate space (heartbeats,
                [--explain]          frontier attribution, --cache-max-bytes
                [--openmetrics F]    inline cap, OpenMetrics exposition)
     xenergy audit [-o FILE]         macro-model vs reference error audit
                [--baseline FILE]    regression gate vs a committed baseline
     xenergy serve --socket PATH     long-lived estimation daemon (model
                [--max-models N]     registry, batch estimate/attribute/
                [--max-conns N]      audit/explore over length-prefixed
                [--cache-dir DIR]    JSON, concurrent connections,
                [--model FILE]       OpenMetrics scrape); with --call/
                [--call JSON ... | --scrape | --ping | --stop] acts as a
                client against a running daemon instead (repeated
                --call batches over one connection)

   Every command honours XENERGY_LOG=FILE (JSON-lines structured log)
   and XENERGY_LOG_LEVEL=debug|info|warn|error.  The simulating
   commands (profile, characterize, estimate, explore, audit, serve)
   take --backend interp|threaded|check (default from
   XENERGY_BACKEND): interp is the reference interpreter, threaded the
   pre-decoded native-speed backend (bit-identical), check runs both
   and fails on any divergence.
     xenergy cache stats DIR         inventory of an on-disk eval cache
     xenergy cache verify DIR        re-parse every entry, report corruption
     xenergy cache prune DIR [..]    LRU eviction (--max-entries/-bytes/-age)
     xenergy cache gc DIR            sweep orphaned *.tmp / foreign files *)

open Cmdliner

let fmt = Format.std_formatter

(* Diagnostics go to stderr and exit with Cmdliner's conventional
   some_error code, keeping stdout clean for pipeline consumers. *)
let die f =
  Format.kfprintf
    (fun ppf ->
      Format.fprintf ppf "@.";
      exit (Cmd.Exit.some_error))
    Format.err_formatter
    ("xenergy: " ^^ f)

let jobs_arg =
  let doc =
    "Number of worker processes for characterization (also the
     $(b,XENERGY_JOBS) environment variable; defaults to the available
     cores)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let backend_arg =
  let doc =
    "Simulation backend: $(b,interp) (the reference interpreter,
     decode per retirement), $(b,threaded) (pre-decoded threaded code —
     bit-identical results, several times faster) or $(b,check) (run
     both and fail on any divergence).  Also the $(b,XENERGY_BACKEND)
     environment variable; the flag wins."
  in
  Arg.(value & opt (some string) None
       & info [ "backend" ] ~docv:"NAME" ~doc)

let set_backend = function
  | None -> ()
  | Some s -> (
    match Sim.Backend.of_string s with
    | Some b -> Sim.Backend.set_current b
    | None -> die "unknown backend %S (one of: interp, threaded, check)" s)

(* Under --backend check every simulation ran twice; say so, so a green
   exit visibly means "the backends agreed" rather than "check was
   silently ignored".  Parallel commands run their checks inside forked
   workers whose counters do not flow back — a worker's mismatch still
   fails the command. *)
let report_checks () =
  if Sim.Backend.current () = Sim.Backend.Check then begin
    let n = Sim.Backend.checks_run () in
    if n > 0 then
      Format.eprintf
        "backend check: %d dual simulation%s, interpreter and threaded \
         backends agreed bit-for-bit@."
        n
        (if n = 1 then "" else "s")
    else
      Format.eprintf
        "backend check: dual simulations ran in worker processes; no \
         mismatch reported@."
  end

let log_file_arg =
  Arg.(value & opt (some string) None
       & info [ "log-file" ] ~docv:"FILE"
           ~doc:"Append JSON-lines structured log records (one object per
                 line: ts_us on the trace clock, level, tid, pid, event,
                 fields) to $(docv).  The $(b,XENERGY_LOG) environment
                 variable opens the same sink for any command; \
                 $(b,XENERGY_LOG_LEVEL) sets the severity floor.")

let openmetrics_arg =
  Arg.(value & opt (some string) None
       & info [ "openmetrics" ] ~docv:"FILE"
           ~doc:"Save the metrics registry in OpenMetrics (Prometheus
                 text exposition) format to $(docv); implies metrics
                 recording.")

let setup_obs ~log_file ~openmetrics =
  (match log_file with
   | Some path -> (
     try Obs.Log.open_file path
     with Sys_error msg -> die "cannot open log file: %s" msg)
   | None -> ());
  if openmetrics <> None then Obs.Metrics.set_enabled true

let save_openmetrics = function
  | Some path ->
    (try Obs.Export.save path
     with Sys_error msg -> die "cannot write OpenMetrics exposition: %s" msg);
    Format.eprintf "OpenMetrics exposition written to %s@." path
  | None -> ()

let characterize_model ?jobs () =
  Core.Characterize.run ?jobs (Workloads.Suite.characterization ())

let load_or_fit ?jobs = function
  | Some path -> (
    try Core.Template.load path
    with Sys_error msg | Failure msg -> die "cannot load model: %s" msg)
  | None ->
    Format.eprintf "characterizing (no model file given)...@.";
    (characterize_model ?jobs ()).Core.Characterize.model

let model_arg =
  let doc = "Read macro-model coefficients from $(docv) instead of
             re-characterizing." in
  Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"FILE" ~doc)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let find_case name =
  try Workloads.Suite.find name
  with Not_found -> die "unknown workload %S; try `xenergy list'" name

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Format.fprintf fmt "@[<v>characterization suite:@,";
    List.iter
      (fun c -> Format.fprintf fmt "  %s@," c.Core.Extract.case_name)
      (Workloads.Suite.characterization ());
    Format.fprintf fmt "applications:@,";
    List.iter
      (fun c -> Format.fprintf fmt "  %s@," c.Core.Extract.case_name)
      (Workloads.Suite.applications ());
    Format.fprintf fmt "reed-solomon choices:@,";
    List.iter
      (fun c -> Format.fprintf fmt "  %s@," c.Core.Extract.case_name)
      (Workloads.Suite.reed_solomon_choices ());
    Format.fprintf fmt "compiled Tiny-C applications:@,";
    List.iter
      (fun c -> Format.fprintf fmt "  %s@," c.Core.Extract.case_name)
      (Workloads.Suite.c_applications ());
    Format.fprintf fmt "@]@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List all workloads")
    Term.(const run $ const ())

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows in the hottest-blocks table.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full profile as JSON (every executed block, so
                   the conservation sums can be checked downstream;
                   energies in pJ).")
  in
  let folded_arg =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write flame-graph collapsed stacks (one
                   $(i,stack count) line per call path x block, counts in
                   cycles) to $(docv) — feed to flamegraph.pl or
                   speedscope.")
  in
  let folded_energy_arg =
    Arg.(value & opt (some string) None
         & info [ "folded-energy" ] ~docv:"FILE"
             ~doc:"Like $(b,--folded) but with counts in rounded
                   picojoules: an energy flame graph.")
  in
  let annotate_arg =
    Arg.(value & flag
         & info [ "annotate" ]
             ~doc:"Print the annotated disassembly: every instruction with
                   its retirement count and cycle/energy shares.")
  in
  let per_opcode_arg =
    Arg.(value & flag
         & info [ "per-opcode" ]
             ~doc:"Print the per-opcode histogram (counts, cycles, energy
                   by mnemonic).")
  in
  let variables_arg =
    Arg.(value & flag
         & info [ "variables" ]
             ~doc:"Print the legacy macro-model variable profile instead
                   of the hotspot profile (needs no model).")
  in
  let run model_path name top json folded folded_energy annotate per_opcode
      variables backend log_file openmetrics jobs =
    set_backend backend;
    let c = find_case name in
    if variables then
      Format.fprintf fmt "%a@." Core.Extract.pp_profile
        (Core.Extract.profile c)
    else begin
      if top <= 0 then die "--top must be positive";
      setup_obs ~log_file ~openmetrics;
      let model = load_or_fit ?jobs model_path in
      let r = Core.Profiler.run model c in
      if json then print_string (Core.Profiler.to_json r ^ "\n")
      else begin
        Format.fprintf fmt "%a@." (Core.Profiler.pp_table ~top) r;
        if per_opcode then
          Format.fprintf fmt "@.%a@." Core.Profiler.pp_opcodes r;
        if annotate then
          Format.fprintf fmt "@.%a@." Core.Profiler.pp_annotate r
      end;
      let write_file what path text =
        (try
           Out_channel.with_open_text path (fun oc ->
               Out_channel.output_string oc text)
         with Sys_error msg -> die "cannot write %s: %s" what msg);
        Format.eprintf "%s written to %s@." what path
      in
      Option.iter
        (fun path ->
          write_file "folded stacks" path (Core.Profiler.folded_lines r))
        folded;
      Option.iter
        (fun path ->
          write_file "energy folded stacks" path
            (Core.Profiler.folded_lines ~energy:true r))
        folded_energy;
      save_openmetrics openmetrics;
      report_checks ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Hotspot profile of one workload: per-basic-block cycles,
             stalls, cache misses and exact macro-model energy
             (conservation-checked), plus flame-graph and
             annotated-disassembly output")
    Term.(const run $ model_arg $ name_arg $ top_arg $ json_arg $ folded_arg
          $ folded_energy_arg $ annotate_arg $ per_opcode_arg
          $ variables_arg $ backend_arg $ log_file_arg $ openmetrics_arg
          $ jobs_arg)

(* --- reference ----------------------------------------------------------- *)

let reference_cmd =
  let run name =
    let c = find_case name in
    let energy, cpu =
      Power.Estimator.estimate_program ?extension:c.Core.Extract.extension
        c.Core.Extract.asm
    in
    Format.fprintf fmt "%s: %d instructions, %d cycles@." name
      (Sim.Cpu.instructions cpu) (Sim.Cpu.cycles cpu);
    Format.fprintf fmt "reference energy: %a@." Power.Report.pp_energy energy
  in
  Cmd.v
    (Cmd.info "reference"
       ~doc:"Reference (RTL-level) energy of one workload")
    Term.(const run $ name_arg)

(* --- characterize -------------------------------------------------------- *)

let characterize_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Save fitted coefficients to $(docv).")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Print the per-workload run report (wall time, cycles,
                   cache misses, energy, simulation count) and save it as
                   JSON to $(docv).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record spans for the whole pipeline (simulate, extract,
                   fit, cross-validate, per-worker lanes) and save them as
                   Chrome trace-event JSON to $(docv) — loadable in
                   chrome://tracing or Perfetto.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Record the metrics registry (simulator retirement
                   counters, NNLS iterations, worker-pool degradations)
                   and save it as JSON to $(docv).")
  in
  let run out report trace metrics backend log_file openmetrics jobs =
    set_backend backend;
    if trace <> None then Obs.Trace.set_enabled true;
    if metrics <> None then Obs.Metrics.set_enabled true;
    setup_obs ~log_file ~openmetrics;
    let samples, run_report =
      Core.Characterize.collect_with_report ?jobs
        (Workloads.Suite.characterization ())
    in
    let fit = Core.Characterize.fit_samples samples in
    let loo = Core.Characterize.cross_validate ?jobs samples in
    Format.fprintf fmt "%a@." Core.Characterize.pp_fit fit;
    let loo_values = Array.to_list loo |> List.filter_map Fun.id in
    let skipped = Array.length loo - List.length loo_values in
    Format.fprintf fmt
      "leave-one-out rms error %.2f%% over %d folds (%d underdetermined \
       fold%s skipped)@."
      (Regress.Stats.rms (Array.of_list loo_values))
      (List.length loo_values) skipped
      (if skipped = 1 then "" else "s");
    Format.fprintf fmt "%a@."
      (Core.Template.pp_table1 ~paper:Core.Template.paper_reference)
      fit.Core.Characterize.model;
    (match report with
     | Some path ->
       Format.fprintf fmt "@.%a@." Core.Run_report.pp run_report;
       (try Core.Run_report.save path run_report
        with Sys_error msg -> die "cannot write run report: %s" msg);
       Format.fprintf fmt "run report written to %s@." path
     | None -> ());
    (match out with
     | Some path ->
       (try Core.Template.save path fit.Core.Characterize.model
        with Sys_error msg -> die "cannot write coefficients: %s" msg);
       Format.fprintf fmt "coefficients written to %s@." path
     | None -> ());
    (match trace with
     | Some path ->
       (try Obs.Trace.save path
        with Sys_error msg -> die "cannot write trace: %s" msg);
       Format.fprintf fmt "trace written to %s (open in chrome://tracing \
                           or https://ui.perfetto.dev)@." path
     | None -> ());
    (match metrics with
    | Some path ->
      (try Obs.Metrics.save path
       with Sys_error msg -> die "cannot write metrics: %s" msg);
      Format.fprintf fmt "metrics written to %s@." path
    | None -> ());
    save_openmetrics openmetrics;
    report_checks ()
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Fit the macro-model on the characterization suite")
    Term.(const run $ out_arg $ report_arg $ trace_arg $ metrics_arg
          $ backend_arg $ log_file_arg $ openmetrics_arg $ jobs_arg)

(* --- estimate ------------------------------------------------------------ *)

let estimate_cmd =
  let run model_path name backend =
    set_backend backend;
    let model = load_or_fit model_path in
    let c = find_case name in
    let r = Core.Estimate.run model c in
    Format.fprintf fmt
      "%s: %.3f uJ (%d instructions, %d cycles)@." name
      r.Core.Estimate.energy_uj r.Core.Estimate.instructions r.Core.Estimate.cycles;
    report_checks ()
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Macro-model energy of one workload")
    Term.(const run $ model_arg $ name_arg $ backend_arg)

(* --- attribute ------------------------------------------------------------ *)

let attribute_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the breakdown as JSON (energies in pJ, units
                   stated in the document) instead of the table.")
  in
  let bucket_arg =
    Arg.(value & opt int 64
         & info [ "bucket" ] ~docv:"CYCLES"
             ~doc:"Waveform bucket width in cycles.")
  in
  let run model_path name json bucket jobs =
    if bucket <= 0 then die "bucket width must be positive";
    let c = find_case name in
    let model = load_or_fit ?jobs model_path in
    (* One simulation feeds both decompositions: the attribution engine
       and the reference estimator observe the same event stream. *)
    let est =
      Power.Estimator.create ?extension:c.Core.Extract.extension
        Sim.Config.default
    in
    let ref_wf = Obs.Waveform.create ~bucket_cycles:bucket () in
    let b =
      Core.Attribution.run ~bucket_cycles:bucket
        ~observers:[ Power.Estimator.observer_with_waveform est ref_wf ]
        model c
    in
    let ref_pj = Power.Estimator.total_energy est in
    if json then
      Format.fprintf fmt
        "{\"attribution\": %s,@ \"reference_energy_pj\": %.6f,@ \
         \"reference_waveform\": %s}@."
        (Core.Attribution.to_json b)
        ref_pj
        (Obs.Waveform.to_json ref_wf)
    else begin
      Format.fprintf fmt "%a@." Core.Attribution.pp b;
      Format.fprintf fmt
        "@.reference energy %a, macro-model error %+.2f%%@."
        Power.Report.pp_energy ref_pj
        (if Float.abs ref_pj < 1e-9 then 0.0
         else 100.0 *. (b.Core.Attribution.total_pj -. ref_pj) /. ref_pj)
    end
  in
  Cmd.v
    (Cmd.info "attribute"
       ~doc:"Per-variable energy breakdown and power-over-time waveform
             of one workload")
    Term.(const run $ model_arg $ name_arg $ json_arg $ bucket_arg $ jobs_arg)

(* --- compare ------------------------------------------------------------- *)

let compare_cmd =
  let run model_path =
    let model = load_or_fit model_path in
    let table =
      Core.Evaluate.compare_cases model (Workloads.Suite.applications ())
    in
    Format.fprintf fmt "%a@." Core.Evaluate.pp_table table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Table II: applications, macro-model vs reference")
    Term.(const run $ model_arg)

(* --- disasm ---------------------------------------------------------------- *)

let disasm_cmd =
  let run name =
    let c = find_case name in
    Format.fprintf fmt "%a@." Isa.Program.pp_listing c.Core.Extract.asm
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassembly listing of a workload")
    Term.(const run $ name_arg)

(* --- breakdown ------------------------------------------------------------- *)

let breakdown_cmd =
  let run name =
    let c = find_case name in
    let est =
      Power.Estimator.create ?extension:c.Core.Extract.extension
        Sim.Config.default
    in
    let cpu, _ =
      Sim.Cpu.run_program ?extension:c.Core.Extract.extension
        ~observers:[ Power.Estimator.observer est ]
        c.Core.Extract.asm
    in
    Format.fprintf fmt "%s: %d instructions, %d cycles@." name
      (Sim.Cpu.instructions cpu) (Sim.Cpu.cycles cpu);
    Format.fprintf fmt "%a@." Power.Report.pp_breakdown
      (Power.Estimator.breakdown est)
  in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:"Per-block reference-energy breakdown of a workload")
    Term.(const run $ name_arg)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let count_arg =
    Arg.(value & opt int 40
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Number of instructions to trace.")
  in
  let run name count =
    let c = find_case name in
    let est =
      Power.Estimator.create ?extension:c.Core.Extract.extension
        Sim.Config.default
    in
    let shown = ref 0 in
    let prev_energy = ref 0.0 in
    Format.fprintf fmt "%8s %8s %6s %-25s %3s %10s@." "cycle" "pc" "cyc"
      "instruction" "flg" "energy pJ";
    let obs e =
      Power.Estimator.observe est e;
      if !shown < count then begin
        incr shown;
        let now = Power.Estimator.total_energy est in
        let flags =
          String.concat ""
            [ (if e.Sim.Event.interlock then "i" else "");
              (if not e.Sim.Event.fetch.Sim.Event.fhit then "m" else "");
              (match e.Sim.Event.taken with
               | Some true -> "T"
               | Some false -> "n"
               | None -> "") ]
        in
        Format.fprintf fmt "%8d %8x %6d %-25s %3s %10.1f@."
          e.Sim.Event.start_cycle e.Sim.Event.fetch.Sim.Event.fpc
          e.Sim.Event.cycles
          (Isa.Instr.to_string e.Sim.Event.instr)
          flags (now -. !prev_energy);
        prev_energy := now
      end
    in
    let cpu, _ =
      Sim.Cpu.run_program ?extension:c.Core.Extract.extension
        ~observers:[ obs ] c.Core.Extract.asm
    in
    Format.fprintf fmt "... %d instructions total, %d cycles, %a@."
      (Sim.Cpu.instructions cpu) (Sim.Cpu.cycles cpu)
      Power.Report.pp_energy
      (Power.Estimator.total_energy est)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Per-instruction execution/energy trace (WattWatcher style)")
    Term.(const run $ name_arg $ count_arg)

(* --- run: external assembly files ------------------------------------------ *)

let run_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  let ext_arg =
    Arg.(value & opt (some string) None
         & info [ "e"; "extension" ] ~docv:"NAME"
             ~doc:"Install a named custom-instruction extension (one of:
                   mac, add4, blend, des, gf, gfmac, gf4, cover_*).")
  in
  let run model_path file ext_name =
    let source = In_channel.with_open_text file In_channel.input_all in
    let program =
      try Isa.Asm_parser.parse_string ~name:(Filename.basename file) source
      with Isa.Asm_parser.Parse_error (line, msg) ->
        die "%s:%d: %s" file line msg
    in
    let extension =
      match ext_name with
      | None -> None
      | Some n -> (
        match Workloads.Tie_lib.by_name n with
        | Some e -> Some e
        | None ->
          die "unknown extension %S; available: %s" n
            (String.concat ", " Workloads.Tie_lib.extension_names))
    in
    let asm =
      try Isa.Program.assemble program
      with Isa.Program.Assembly_error msg -> die "%s: %s" file msg
    in
    let case = Core.Extract.case ?extension "user" asm in
    let profile = Core.Extract.profile case in
    Format.fprintf fmt "%a@." Core.Extract.pp_profile profile;
    let ref_pj, _ =
      Power.Estimator.estimate_program ?extension asm
    in
    Format.fprintf fmt "reference energy: %a@." Power.Report.pp_energy ref_pj;
    let model = load_or_fit model_path in
    let est = Core.Estimate.of_profile model profile in
    Format.fprintf fmt "macro-model estimate: %a (error %+.2f%%)@."
      Power.Report.pp_energy est.Core.Estimate.energy_pj
      (100.0 *. (est.Core.Estimate.energy_pj -. ref_pj) /. ref_pj)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Assemble, simulate and estimate an external .s file")
    Term.(const run $ model_arg $ file_arg $ ext_arg)

(* --- cc: compile and estimate C sources ------------------------------------ *)

let cc_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")
  in
  let ext_arg =
    Arg.(value & opt (some string) None
         & info [ "e"; "extension" ] ~docv:"NAME"
             ~doc:"Install a named custom-instruction extension.")
  in
  let listing_arg =
    Arg.(value & flag
         & info [ "S"; "listing" ] ~doc:"Print the generated assembly.")
  in
  let run model_path file ext_name listing =
    let source = In_channel.with_open_text file In_channel.input_all in
    let compiled =
      try Cc.Codegen.compile_source source with
      | Cc.Parser.Parse_error (line, msg) -> die "%s:%d: %s" file line msg
      | Cc.Codegen.Codegen_error msg -> die "%s: %s" file msg
    in
    if listing then
      Format.fprintf fmt "%a@." Isa.Program.pp_listing
        compiled.Cc.Codegen.c_asm;
    let extension =
      match ext_name with
      | None -> None
      | Some n -> (
        match Workloads.Tie_lib.by_name n with
        | Some e -> Some e
        | None ->
          die "unknown extension %S; available: %s" n
            (String.concat ", " Workloads.Tie_lib.extension_names))
    in
    let case =
      Core.Extract.case ?extension "c-program" compiled.Cc.Codegen.c_asm
    in
    let profile = Core.Extract.profile case in
    let cpu, _ =
      Sim.Cpu.run_program ?extension compiled.Cc.Codegen.c_asm
    in
    Format.fprintf fmt
      "main returned %d (%d instructions, %d cycles)@."
      (Sim.Cpu.reg cpu (Isa.Reg.a 10))
      profile.Core.Extract.instructions profile.Core.Extract.cycles;
    let ref_pj, _ =
      Power.Estimator.estimate_program ?extension compiled.Cc.Codegen.c_asm
    in
    Format.fprintf fmt "reference energy: %a@." Power.Report.pp_energy ref_pj;
    let model = load_or_fit model_path in
    let est = Core.Estimate.of_profile model profile in
    Format.fprintf fmt "macro-model estimate: %a (error %+.2f%%)@."
      Power.Report.pp_energy est.Core.Estimate.energy_pj
      (100.0 *. (est.Core.Estimate.energy_pj -. ref_pj) /. ref_pj)
  in
  Cmd.v
    (Cmd.info "cc"
       ~doc:"Compile a Tiny-C file, simulate it and estimate its energy")
    Term.(const run $ model_arg $ file_arg $ ext_arg $ listing_arg)

(* --- explore -------------------------------------------------------------- *)

let explore_cmd =
  let space_arg =
    Arg.(value & opt string "rs-cache"
         & info [ "space" ] ~docv:"NAME"
             ~doc:(Printf.sprintf
                     "Candidate space to sweep (one of: %s)."
                     (String.concat ", " Workloads.Spaces.names)))
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Memoize simulation results as one JSON file per entry
                   under $(docv); a later sweep over overlapping
                   candidates (or the same sweep re-run) reuses them
                   instead of re-simulating.  Corrupted or unwritable
                   entries fall back to recompute.")
  in
  let cache_max_bytes_arg =
    Arg.(value & opt (some int) None
         & info [ "cache-max-bytes" ] ~docv:"BYTES"
             ~doc:"Cap the on-disk cache at $(docv) bytes of entry
                   payload: a store that crosses the bound runs LRU
                   eviction inline (no manual $(b,cache prune) needed).
                   Requires $(b,--cache-dir).")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Print a heartbeat to stderr between evaluation chunks:
                   done/total, cache hits/misses, current frontier size,
                   elapsed time and ETA.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Decompose each Pareto-frontier candidate's energy
                   across the macro-model variables (exact — the model is
                   linear — and free: computed from the cached variable
                   vectors, no extra simulation).")
  in
  let pareto_arg =
    Arg.(value & flag
         & info [ "pareto" ]
             ~doc:"Restrict the table/CSV rows to the Pareto frontier.")
  in
  let profile_top_arg =
    Arg.(value & opt (some int) None
         & info [ "profile-top" ] ~docv:"N"
             ~doc:"Profile each Pareto-frontier candidate (one extra
                   observed simulation per point) and dump its $(docv)
                   hottest basic blocks — per-block cycles, stalls and
                   exact macro-model energy.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the sweep as JSON (energies in pJ/uJ, units
                   stated in the document) instead of the table.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the sweep as CSV.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Also write the rendered output to $(docv).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record Chrome trace-event spans for the sweep
                   (per-config characterization, per-candidate
                   simulations, cache hit instants) to $(docv).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Save the metrics registry (cache hit/miss/error
                   counters, simulator and worker-pool counters) as JSON
                   to $(docv).")
  in
  let run space cache_dir cache_max_bytes progress explain pareto profile_top
      json csv out trace metrics backend log_file openmetrics jobs =
    set_backend backend;
    if json && csv then die "--json and --csv are mutually exclusive";
    if cache_max_bytes <> None && cache_dir = None then
      die "--cache-max-bytes requires --cache-dir";
    (match profile_top with
     | Some n when n <= 0 -> die "--profile-top must be positive"
     | _ -> ());
    (match cache_max_bytes with
     | Some n when n < 0 -> die "--cache-max-bytes must be >= 0"
     | _ -> ());
    let build_space =
      match Workloads.Spaces.find space with
      | Some f -> f
      | None ->
        die "unknown space %S; available: %s" space
          (String.concat ", " Workloads.Spaces.names)
    in
    if trace <> None then Obs.Trace.set_enabled true;
    if metrics <> None then Obs.Metrics.set_enabled true;
    setup_obs ~log_file ~openmetrics;
    let cache =
      Core.Eval_cache.create ?dir:cache_dir ?max_bytes:cache_max_bytes ()
    in
    let heartbeat (p : Core.Explore.progress) =
      if progress then
        Format.eprintf
          "explore: [%s] %d/%d  cache %d hit%s %d miss%s  frontier %d  \
           %.1f s elapsed%s@."
          p.Core.Explore.pr_phase p.Core.Explore.pr_done
          p.Core.Explore.pr_total p.Core.Explore.pr_hits
          (if p.Core.Explore.pr_hits = 1 then "" else "s")
          p.Core.Explore.pr_misses
          (if p.Core.Explore.pr_misses = 1 then "" else "es")
          p.Core.Explore.pr_frontier p.Core.Explore.pr_elapsed_s
          (match p.Core.Explore.pr_eta_s with
           | None -> ""
           | Some eta -> Printf.sprintf ", ~%.1f s left" eta)
    in
    let outcome =
      Core.Explore.run ?jobs ~cache ~progress:heartbeat ~explain ?profile_top
        ~characterization:(Workloads.Suite.characterization ())
        (build_space ())
    in
    let rendered =
      if json then Core.Explore.to_json outcome ^ "\n"
      else if csv then Core.Explore.to_csv ~pareto_only:pareto outcome
      else
        Format.asprintf "%a@."
          (fun ppf -> Core.Explore.pp ~pareto_only:pareto ppf)
          outcome
    in
    print_string rendered;
    (match out with
     | Some path ->
       (try
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc rendered)
        with Sys_error msg -> die "cannot write output: %s" msg);
       Format.eprintf "sweep written to %s@." path
     | None -> ());
    (match trace with
     | Some path ->
       (try Obs.Trace.save path
        with Sys_error msg -> die "cannot write trace: %s" msg);
       Format.eprintf "trace written to %s@." path
     | None -> ());
    (match metrics with
    | Some path ->
      (try Obs.Metrics.save path
       with Sys_error msg -> die "cannot write metrics: %s" msg);
      Format.eprintf "metrics written to %s@." path
    | None -> ());
    save_openmetrics openmetrics;
    report_checks ()
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Design-space exploration: sweep a candidate space through
             the macro-model (memoized) and extract the
             energy/performance Pareto frontier")
    Term.(const run $ space_arg $ cache_dir_arg $ cache_max_bytes_arg
          $ progress_arg $ explain_arg $ pareto_arg $ profile_top_arg
          $ json_arg $ csv_arg $ out_arg $ trace_arg $ metrics_arg
          $ backend_arg $ log_file_arg $ openmetrics_arg $ jobs_arg)

(* --- cache: lifecycle management of an on-disk evaluation cache ----------- *)

let cache_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"Cache directory (as given to $(b,explore --cache-dir).")
  in
  let require_dir dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      die "no such cache directory: %s" dir
  in
  let human_bytes n =
    if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1048576.0)
    else if n >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
    else Printf.sprintf "%d B" n
  in
  let age now = function
    | None -> "-"
    | Some t -> Printf.sprintf "%.0f s ago" (Float.max 0.0 (now -. t))
  in
  let stats_cmd =
    let json_arg =
      Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the inventory as JSON.")
    in
    let run dir json =
      require_dir dir;
      let s = Core.Eval_cache.disk_stats dir in
      let now = Unix.gettimeofday () in
      if json then
        Format.fprintf fmt
          "{\"entries\": %d, \"bytes\": %d, \"oldest_age_seconds\": %s, \
           \"newest_age_seconds\": %s, \"index_rebuilt\": %b}@."
          s.Core.Eval_cache.d_entries s.Core.Eval_cache.d_bytes
          (match s.Core.Eval_cache.d_oldest with
           | None -> "null"
           | Some t -> Printf.sprintf "%.1f" (Float.max 0.0 (now -. t)))
          (match s.Core.Eval_cache.d_newest with
           | None -> "null"
           | Some t -> Printf.sprintf "%.1f" (Float.max 0.0 (now -. t)))
          s.Core.Eval_cache.d_index_rebuilt
      else
        Format.fprintf fmt
          "%s: %d entr%s, %s@.least recently used: %s@.most recently \
           used: %s@.index: %s@."
          dir s.Core.Eval_cache.d_entries
          (if s.Core.Eval_cache.d_entries = 1 then "y" else "ies")
          (human_bytes s.Core.Eval_cache.d_bytes)
          (age now s.Core.Eval_cache.d_oldest)
          (age now s.Core.Eval_cache.d_newest)
          (if s.Core.Eval_cache.d_index_rebuilt then
             "rebuilt from the entry files"
           else "loaded")
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Inventory of a cache directory (from its
                              self-healing index)")
      Term.(const run $ dir_arg $ json_arg)
  in
  let verify_cmd =
    let run dir =
      require_dir dir;
      let r = Core.Eval_cache.verify dir in
      Format.fprintf fmt
        "%s: %d entr%s ok, %d corrupt, %d foreign file%s, %d orphaned \
         tmp file%s@."
        dir r.Core.Eval_cache.v_ok
        (if r.Core.Eval_cache.v_ok = 1 then "y" else "ies")
        (List.length r.Core.Eval_cache.v_corrupt)
        (List.length r.Core.Eval_cache.v_foreign)
        (if List.length r.Core.Eval_cache.v_foreign = 1 then "" else "s")
        (List.length r.Core.Eval_cache.v_tmp)
        (if List.length r.Core.Eval_cache.v_tmp = 1 then "" else "s");
      List.iter
        (fun (f, why) -> Format.eprintf "corrupt: %s: %s@." f why)
        r.Core.Eval_cache.v_corrupt;
      if r.Core.Eval_cache.v_corrupt <> [] then exit Cmd.Exit.some_error
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Re-parse every cache entry; report corrupt and foreign
               files (exit non-zero when corrupt entries exist)")
      Term.(const run $ dir_arg)
  in
  let prune_cmd =
    let max_entries_arg =
      Arg.(value & opt (some int) None
           & info [ "max-entries" ] ~docv:"N"
               ~doc:"Keep at most $(docv) entries (LRU by the recorded
                     last-use time).")
    in
    let max_bytes_arg =
      Arg.(value & opt (some int) None
           & info [ "max-bytes" ] ~docv:"BYTES"
               ~doc:"Keep at most $(docv) bytes of entry payload.")
    in
    let max_age_arg =
      Arg.(value & opt (some float) None
           & info [ "max-age" ] ~docv:"DAYS"
               ~doc:"Evict entries unused for more than $(docv) days
                     (fractional values allowed).")
    in
    let run dir max_entries max_bytes max_age =
      require_dir dir;
      if max_entries = None && max_bytes = None && max_age = None then
        die "prune: give at least one of --max-entries, --max-bytes, \
             --max-age";
      (match max_entries with
       | Some n when n < 0 -> die "prune: --max-entries must be >= 0"
       | _ -> ());
      (match max_bytes with
       | Some n when n < 0 -> die "prune: --max-bytes must be >= 0"
       | _ -> ());
      (match max_age with
       | Some d when d < 0.0 -> die "prune: --max-age must be >= 0"
       | _ -> ());
      let policy =
        { Core.Eval_cache.max_entries; max_bytes;
          max_age_s = Option.map (fun d -> d *. 86400.0) max_age }
      in
      let r = Core.Eval_cache.prune ~policy dir in
      Format.fprintf fmt
        "%s: evicted %d entr%s (%s), kept %d (%s)%s@."
        dir r.Core.Eval_cache.p_evicted
        (if r.Core.Eval_cache.p_evicted = 1 then "y" else "ies")
        (human_bytes r.Core.Eval_cache.p_evicted_bytes)
        r.Core.Eval_cache.p_kept
        (human_bytes r.Core.Eval_cache.p_kept_bytes)
        (if r.Core.Eval_cache.p_index_rebuilt then
           " (index rebuilt from the entry files)"
         else "")
    in
    Cmd.v
      (Cmd.info "prune"
         ~doc:"Apply a size/age eviction policy (entries are immutable
               and recomputable, so eviction is always safe)")
      Term.(const run $ dir_arg $ max_entries_arg $ max_bytes_arg
            $ max_age_arg)
  in
  let gc_cmd =
    let run dir =
      require_dir dir;
      let r = Core.Eval_cache.gc dir in
      Format.fprintf fmt
        "%s: removed %d orphaned tmp file%s and %d foreign file%s; \
         index +%d/-%d@."
        dir r.Core.Eval_cache.g_tmp_removed
        (if r.Core.Eval_cache.g_tmp_removed = 1 then "" else "s")
        r.Core.Eval_cache.g_foreign_removed
        (if r.Core.Eval_cache.g_foreign_removed = 1 then "" else "s")
        r.Core.Eval_cache.g_index_added r.Core.Eval_cache.g_index_dropped
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Remove orphaned *.tmp and unindexable files, then re-sync
               the index")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Manage an on-disk evaluation cache (stats, verify, prune,
             gc)")
    [ stats_cmd; verify_cmd; prune_cmd; gc_cmd ]

(* --- audit ---------------------------------------------------------------- *)

let audit_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the accuracy report as JSON (the same document
                   $(b,-o) writes) instead of the table.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the accuracy report as JSON to $(docv) — the
                   format committed as a baseline (BENCH_accuracy.json).")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Gate against a committed accuracy baseline: fail
                   (non-zero exit) when this audit's mean absolute error
                   exceeds the baseline's by more than the tolerance
                   factor.")
  in
  let tolerance_arg =
    Arg.(value & opt float 2.0
         & info [ "tolerance" ] ~docv:"FACTOR"
             ~doc:"Allowed regression factor for the baseline gate: pass
                   while mean |error| <= baseline mean |error| x $(docv).")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Memoize the reference-observed simulations under
                   $(docv); a warm audit costs zero simulations.")
  in
  let run model_path json out baseline tolerance cache_dir backend log_file
      openmetrics jobs =
    set_backend backend;
    if tolerance <= 0.0 then die "--tolerance must be > 0";
    setup_obs ~log_file ~openmetrics;
    let model = load_or_fit ?jobs model_path in
    let cache = Core.Eval_cache.create ?dir:cache_dir () in
    let report =
      Core.Audit.run ?jobs ~cache model (Workloads.Suite.applications ())
    in
    if json then print_string (Core.Audit.to_json report ^ "\n")
    else Format.fprintf fmt "%a@." Core.Audit.pp report;
    (match out with
     | Some path ->
       (try
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Core.Audit.to_json report);
              Out_channel.output_char oc '\n')
        with Sys_error msg -> die "cannot write accuracy report: %s" msg);
       Format.eprintf "accuracy report written to %s@." path
     | None -> ());
    save_openmetrics openmetrics;
    report_checks ();
    match baseline with
    | None -> ()
    | Some path ->
      let b =
        try
          Core.Audit.of_json
            (In_channel.with_open_text path In_channel.input_all)
        with
        | Sys_error msg | Failure msg -> die "cannot load baseline: %s" msg
        | Obs.Json.Parse_error msg -> die "cannot load baseline: %s" msg
      in
      let g = Core.Audit.gate ~tolerance ~baseline:b report in
      Format.fprintf fmt "%a@." Core.Audit.pp_gate g;
      if not g.Core.Audit.g_pass then exit Cmd.Exit.some_error
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Audit macro-model accuracy against the reference estimator
             (per-application error table, JSON report, optional
             regression gate against a committed baseline)")
    Term.(const run $ model_arg $ json_arg $ out_arg $ baseline_arg
          $ tolerance_arg $ cache_dir_arg $ backend_arg $ log_file_arg
          $ openmetrics_arg $ jobs_arg)

(* --- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket the daemon listens on (or, in
                   client mode, connects to).")
  in
  let max_models_arg =
    Arg.(value & opt int 4
         & info [ "max-models" ] ~docv:"N"
             ~doc:"Bound on resident characterized models; the least
                   recently used are evicted past it.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Back the evaluation cache on disk under $(docv), so
                   per-workload profiles survive daemon restarts.")
  in
  let model_file_arg =
    Arg.(value & opt (some string) None
         & info [ "model" ] ~docv:"FILE"
             ~doc:"Preload a fitted coefficients file as the model for
                   the default processor configuration, skipping the
                   first characterization.")
  in
  let io_timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "io-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection I/O deadline: a client that wedges
                   mid-frame, stops reading its response, or idles
                   longer is dropped.")
  in
  let max_conns_arg =
    Arg.(value & opt int 8
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Bound on concurrently served connections; clients
                   past it queue in the listen backlog.")
  in
  let read_timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Worker-pool read deadline: a simulation worker that
                   wedges past it is killed and its slice recomputed.
                   0 disables the deadline.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Warn-log any request slower than $(docv) milliseconds
                   (event serve:slow-request, carrying the trace id and
                   the per-phase time breakdown) and count it in
                   serve_slow_requests_total.")
  in
  let trace_file_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-file" ] ~docv:"FILE"
             ~doc:"Record request spans for the daemon's lifetime
                   (serve:<op> with phase:* children, client calls,
                   pool-worker lanes — one trace id per request end to
                   end) and save them as Chrome trace-event JSON to
                   $(docv) on shutdown.")
  in
  let call_arg =
    Arg.(value & opt_all string []
         & info [ "call" ] ~docv:"JSON"
             ~doc:"Client mode: send a request object to a running
                   daemon and print its response to stdout.  Repeat the
                   flag to batch several requests over one connection
                   (one response line each, in order).")
  in
  let scrape_arg =
    Arg.(value & flag
         & info [ "scrape" ]
             ~doc:"Client mode: print the daemon's OpenMetrics
                   exposition (the /metrics endpoint) to stdout.")
  in
  let ping_arg =
    Arg.(value & flag
         & info [ "ping" ] ~doc:"Client mode: liveness check.")
  in
  let status_arg =
    Arg.(value & flag
         & info [ "status" ]
             ~doc:"Client mode: print the daemon's live status (the
                   status op — rolling-window request/error rates and
                   latency quantiles per op, inflight gauges, registry
                   residency, cache and pool health) as JSON to
                   stdout.")
  in
  let stop_arg =
    Arg.(value & flag
         & info [ "stop" ]
             ~doc:"Client mode: ask the daemon to shut down.")
  in
  let wait_arg =
    Arg.(value & opt float 10.0
         & info [ "wait" ] ~docv:"SECONDS"
             ~doc:"Client mode: how long to wait for the daemon to
                   answer pings before giving up (covers a daemon still
                   starting up).")
  in
  let timeout_arg =
    Arg.(value & opt float 600.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Client mode: response deadline for the request
                   itself (a cold estimate characterizes first — size
                   generously).")
  in
  let client_call ~socket ~timeout req =
    try Serve.Client.call ~timeout_s:timeout ~socket req
    with
    | Unix.Unix_error (e, _, _) ->
      die "cannot reach server at %s: %s" socket (Unix.error_message e)
    | Serve.Protocol.Frame_error msg -> die "%s" msg
    | Obs.Json.Parse_error msg -> die "malformed response: %s" msg
  in
  let response_ok = function
    | Obs.Json.Obj fields ->
      List.assoc_opt "ok" fields = Some (Obs.Json.Bool true)
    | _ -> false
  in
  let run socket max_models cache_dir model_file io_timeout max_conns
      read_timeout slow_ms trace_file call scrape ping status stop wait
      timeout backend log_file openmetrics jobs =
    (* Daemon mode: the process-wide default backend, overridable per
       request by the "backend" field.  Irrelevant in client mode. *)
    set_backend backend;
    setup_obs ~log_file ~openmetrics;
    let client_mode = call <> [] || scrape || ping || status || stop in
    if client_mode then begin
      if not (Serve.Client.wait_ready ~timeout_s:wait ~socket ()) then
        die "server at %s not answering after %.1f s" socket wait;
      if ping then begin
        let resp =
          client_call ~socket ~timeout (Obs.Json.Obj [ ("op", Obs.Json.Str "ping") ])
        in
        if not (response_ok resp) then die "ping refused";
        print_endline (Serve.Protocol.json_to_string resp)
      end;
      if status then begin
        let resp =
          client_call ~socket ~timeout
            (Obs.Json.Obj [ ("op", Obs.Json.Str "status") ])
        in
        if not (response_ok resp) then die "status refused";
        print_endline (Serve.Protocol.json_to_string resp)
      end;
      (match call with
       | [] -> ()
       | texts ->
         let reqs =
           List.map
             (fun text ->
               try Obs.Json.parse text
               with Obs.Json.Parse_error msg -> die "--call: %s" msg)
             texts
         in
         (* The response — success or a structured error — is the
            result; print each verbatim and let the caller inspect
            "ok".  A batch of --call flags shares one connection, so
            repeated calls amortize the connect and group under one
            correlation id in the daemon's log. *)
         (try
            Serve.Client.with_session ~socket (fun session ->
                List.iter
                  (fun req ->
                    print_endline
                      (Serve.Protocol.json_to_string
                         (Serve.Client.session_call ~timeout_s:timeout session
                            req)))
                  reqs)
          with
          | Unix.Unix_error (e, _, _) ->
            die "cannot reach server at %s: %s" socket (Unix.error_message e)
          | Serve.Protocol.Frame_error msg -> die "%s" msg
          | Obs.Json.Parse_error msg -> die "malformed response: %s" msg));
      if scrape then begin
        let resp =
          client_call ~socket ~timeout
            (Obs.Json.Obj [ ("op", Obs.Json.Str "metrics") ])
        in
        if not (response_ok resp) then die "metrics scrape refused";
        match resp with
        | Obs.Json.Obj fields -> (
          match List.assoc_opt "exposition" fields with
          | Some (Obs.Json.Str text) -> print_string text
          | _ -> die "malformed metrics response")
        | _ -> die "malformed metrics response"
      end;
      if stop then begin
        let resp =
          client_call ~socket ~timeout
            (Obs.Json.Obj [ ("op", Obs.Json.Str "shutdown") ])
        in
        if not (response_ok resp) then die "shutdown refused"
      end
    end
    else begin
      if max_models < 1 then die "--max-models must be >= 1";
      if io_timeout <= 0.0 then die "--io-timeout must be > 0";
      if max_conns < 1 then die "--max-conns must be >= 1";
      if read_timeout < 0.0 then die "--read-timeout must be >= 0";
      (match slow_ms with
       | Some ms when ms <= 0.0 -> die "--slow-ms must be > 0"
       | _ -> ());
      let read_timeout_s =
        if read_timeout = 0.0 then None else Some read_timeout
      in
      if trace_file <> None then Obs.Trace.set_enabled true;
      (* Metrics must be live before the router and any --model preload
         touch the registry, or the pre-listen residency gauge is lost. *)
      Obs.Metrics.set_enabled true;
      let router =
        Serve.Router.create ~max_models ?jobs ?read_timeout_s ?cache_dir
          ?slow_ms ()
      in
      (match model_file with
       | None -> ()
       | Some path ->
         let model =
           try Core.Template.load path
           with Sys_error msg | Failure msg -> die "cannot load model: %s" msg
         in
         Serve.Registry.preload (Serve.Router.registry router)
           Sim.Config.default model;
         Format.eprintf "model preloaded from %s@." path);
      Format.eprintf "serving on %s (stop with `xenergy serve --socket %s \
                      --stop')@." socket socket;
      (try
         Serve.Server.run ~io_timeout_s:io_timeout ~max_conns ~socket router
       with
       | Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
         die "a live daemon already answers on %s (stop it first, or \
              pick another socket)" socket
       | Unix.Unix_error (e, _, _) ->
         die "cannot serve on %s: %s" socket (Unix.error_message e));
      (match trace_file with
       | Some path ->
         (try Obs.Trace.save path
          with Sys_error msg -> die "cannot write trace: %s" msg);
         Format.eprintf "trace written to %s@." path
       | None -> ());
      save_openmetrics openmetrics
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived estimation daemon over a Unix-domain socket
             (characterize once per configuration, estimate from
             memory), or a client against one (--call/--scrape/--ping/
             --status/--stop)")
    Term.(const run $ socket_arg $ max_models_arg $ cache_dir_arg
          $ model_file_arg $ io_timeout_arg $ max_conns_arg
          $ read_timeout_arg $ slow_ms_arg $ trace_file_arg $ call_arg
          $ scrape_arg $ ping_arg $ status_arg $ stop_arg
          $ wait_arg $ timeout_arg $ backend_arg $ log_file_arg
          $ openmetrics_arg $ jobs_arg)

(* --- top ----------------------------------------------------------------- *)

let top_cmd =
  let module J = Obs.Json in
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the daemon to watch.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh period between status polls.  The daemon's
                   rolling window sharpens to this cadence after the
                   first couple of refreshes.")
  in
  let iterations_arg =
    Arg.(value & opt int 0
         & info [ "iterations" ] ~docv:"N"
             ~doc:"Stop after $(docv) refreshes (0: run until
                   interrupted).  $(b,--iterations 1) prints one
                   snapshot and exits, for scripts and smoke tests.")
  in
  let wait_arg =
    Arg.(value & opt float 10.0
         & info [ "wait" ] ~docv:"SECONDS"
             ~doc:"How long to wait for the daemon to answer pings
                   before giving up.")
  in
  let field name = function J.Obj f -> List.assoc_opt name f | _ -> None in
  let numf ?(default = 0.0) name j =
    match field name j with Some (J.Num x) -> x | _ -> default
  in
  let strf name j = match field name j with Some (J.Str s) -> s | _ -> "?" in
  let sub name j = match field name j with Some o -> o | None -> J.Obj [] in
  (* Latency cells render "-" until the op has a histogram to estimate
     from (quantiles are Null on an empty window). *)
  let ms_cell name j =
    match field name j with
    | Some (J.Num x) -> Printf.sprintf "%8.2f" x
    | _ -> Printf.sprintf "%8s" "-"
  in
  let render status =
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let conn = sub "connections" status in
    let pool = sub "pool" status in
    let reg = sub "registry" status in
    let cache = sub "cache" status in
    line "xenergy top - pid %.0f  up %.1f s  backend %s  window %.0f s (dt %.1f s)"
      (numf "pid" status) (numf "uptime_s" status) (strf "backend" status)
      (numf "window_s" status) (numf "window_dt_s" status);
    line "requests %.0f  inflight %.0f  connections %.0f active / %.0f total  pool %.0f/%.0f lanes live"
      (numf "requests" status) (numf "inflight" status)
      (numf "active" conn) (numf "total" conn)
      (numf "live" pool) (numf "lanes" pool);
    line "registry %.0f models (hit %.0f miss %.0f evict %.0f)  cache hit %.0f miss %.0f store %.0f err %.0f"
      (numf "models" reg) (numf "hits" reg) (numf "misses" reg)
      (numf "evictions" reg)
      (numf "hits" cache) (numf "misses" cache) (numf "stores" cache)
      (numf "errors" cache);
    line "";
    line "%-10s %8s %6s %6s %6s %9s %9s %8s %8s %8s"
      "OP" "REQ" "ERR" "SLOW" "INFL" "RATE/S" "ERR/S" "P50ms" "P90ms" "P99ms";
    (match field "ops" status with
     | Some (J.Arr rows) ->
       List.iter
         (fun row ->
           let w = sub "window" row in
           line "%-10s %8.0f %6.0f %6.0f %6.0f %9.2f %9.2f %s %s %s"
             (strf "op" row) (numf "requests" row) (numf "errors" row)
             (numf "slow" row) (numf "inflight" row)
             (numf "rate_hz" w) (numf "error_rate_hz" w)
             (ms_cell "p50_ms" w) (ms_cell "p90_ms" w) (ms_cell "p99_ms" w))
         rows
     | _ -> ());
    Buffer.contents b
  in
  let run socket interval iterations wait =
    if interval <= 0.0 then die "--interval must be > 0";
    if iterations < 0 then die "--iterations must be >= 0";
    if not (Serve.Client.wait_ready ~timeout_s:wait ~socket ()) then
      die "server at %s not answering after %.1f s" socket wait;
    (* Refresh in place only on an interactive terminal; piped output
       (scripts, CI smoke) gets plain concatenated frames. *)
    let clear = Unix.isatty Unix.stdout in
    let req = J.Obj [ ("op", J.Str "status") ] in
    let connect () =
      try Serve.Client.connect ~socket
      with Unix.Unix_error (e, _, _) ->
        die "cannot reach server at %s: %s" socket (Unix.error_message e)
    in
    let poll session =
      try Serve.Client.session_call ~timeout_s:10.0 session req
      with
      | Unix.Unix_error (e, _, _) ->
        die "lost the daemon at %s: %s" socket (Unix.error_message e)
      | Serve.Protocol.Frame_error msg -> die "%s" msg
      | Obs.Json.Parse_error msg -> die "malformed response: %s" msg
    in
    let rec loop session n =
      (* The daemon's io-timeout drops sessions idle longer than it, so
         a leisurely --interval needs a quiet reconnect between polls. *)
      let status, session =
        match Serve.Client.session_call ~timeout_s:10.0 session req with
        | resp -> (resp, session)
        | exception (Serve.Protocol.Frame_error _ | Unix.Unix_error _) ->
          Serve.Client.close session;
          let session = connect () in
          (poll session, session)
      in
      (match status with
       | J.Obj fields when List.assoc_opt "ok" fields = Some (J.Bool true) ->
         ()
       | _ -> die "status refused by the daemon at %s" socket);
      if clear then print_string "\027[2J\027[H";
      print_string (render status);
      flush stdout;
      if iterations = 0 || n < iterations then begin
        Unix.sleepf interval;
        loop session (n + 1)
      end
      else Serve.Client.close session
    in
    loop (connect ()) 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard against a running estimation daemon: polls
             the status op and renders per-op request/error rates,
             rolling-window latency quantiles, inflight gauges and
             registry/cache/pool health, refreshing in place.")
    Term.(const run $ socket_arg $ interval_arg $ iterations_arg $ wait_arg)

(* --- rs ------------------------------------------------------------------ *)

let rs_cmd =
  let run model_path =
    let model = load_or_fit model_path in
    let table =
      Core.Evaluate.compare_cases model (Workloads.Suite.reed_solomon_choices ())
    in
    Format.fprintf fmt "%a@." Core.Evaluate.pp_table table;
    Format.fprintf fmt "correlation %.4f, rank agreement %b@."
      (Core.Evaluate.correlation table)
      (Core.Evaluate.rank_agreement table)
  in
  Cmd.v
    (Cmd.info "rs" ~doc:"Fig 4: Reed-Solomon custom-instruction choices")
    Term.(const run $ model_arg)

let main_cmd =
  let doc = "Energy estimation for extensible processors" in
  Cmd.group (Cmd.info "xenergy" ~version:"1.0.0" ~doc)
    [ list_cmd; profile_cmd; reference_cmd; characterize_cmd; estimate_cmd;
      attribute_cmd; compare_cmd; rs_cmd; explore_cmd; audit_cmd; serve_cmd;
      top_cmd; cache_cmd; disasm_cmd; breakdown_cmd; trace_cmd; run_cmd;
      cc_cmd ]

let () =
  (* Any command can stream structured logs via the environment, without
     growing a flag: XENERGY_LOG=FILE xenergy ... — and select the
     simulation backend the same way: XENERGY_BACKEND=threaded|check
     (the per-command --backend flag wins). *)
  Obs.Log.init_from_env ();
  Sim.Backend.init_from_env ();
  exit (Cmd.eval main_cmd)
