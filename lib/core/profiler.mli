(** Hotspot profiler: per-basic-block cycle and energy profiles of one
    simulated workload.

    The profiler is a {!Sim.Cpu} observer — attached, it takes the
    program's static basic-block partition from {!Sim.Decoder.analyze}
    (the same partition the threaded execution backend dispatches, so
    profiler and backend agree on block identity by construction;
    leaders are the entry point, every control-flow target, every
    fall-through past a control instruction, and every code symbol, so
    indirect jump/call destinations start blocks too) and folds each
    retired instruction into its block: retirement counts, cycles, stalls, cache misses and
    the instruction's {e exact marginal model energy} from
    {!Attribution}'s telescoping fold.  Detached, nothing in the
    simulator changes — the observer stream is the only coupling.

    Conservation is the invariant throughout: per-block cycles sum to
    the simulator's cycle count exactly, and per-block energies sum to
    the macro-model estimate (the same total {!Run_report} carries) to
    rounding error.  {!check} exposes both gaps for tests and CI.

    Beyond the block table the profiler derives a call-stack profile
    (flame-graph "folded" lines via {!Obs.Profile.Stacks}, call/return
    tracked from the event stream), a per-line profile for annotated
    disassembly, and a per-opcode histogram. *)

(** One discovered basic block with its accumulated profile.  Blocks
    partition the code section in program order. *)
type block = {
  b_index : int;
  b_addr : int;               (** address of the leader instruction *)
  b_last : int;               (** address of the final instruction *)
  b_label : string;           (** symbol, [sym+0xoff], or hex address *)
  b_slots : int;              (** static instruction count *)
  mutable b_entries : int;    (** times the leader retired *)
  mutable b_retired : int;    (** instructions retired in the block *)
  mutable b_cycles : int;
  mutable b_stall_cycles : int;
  mutable b_icache_misses : int;
  mutable b_dcache_misses : int;
  mutable b_energy_pj : float;
}

type opcode_row = {
  op_name : string;           (** mnemonic *)
  op_hits : int;
  op_cycles : int;
  op_energy_pj : float;
}

type report = {
  r_workload : string;
  r_asm : Isa.Program.asm;
  r_blocks : block array;     (** every block, program order *)
  r_hot : block array;        (** executed blocks, descending cycles *)
  r_slots : Obs.Profile.t;    (** per-instruction-slot profile (key =
                                  slot index) for annotation *)
  r_opcodes : opcode_row list;          (** descending cycles *)
  r_folded : (string * int * float) list;
      (** flame-graph rows: stack, cycles, energy_pj *)
  r_breakdown : Attribution.breakdown;  (** per-variable view of the
                                            same run *)
  r_cycles : int;
  r_instructions : int;
  r_total_pj : float;         (** macro-model energy of the run *)
  r_cycle_gap : int;          (** |sum block cycles - r_cycles| *)
  r_energy_gap : float;       (** relative gap of block energy sum *)
}

type t
(** A profiling engine usable as a simulation observer. *)

val create :
  ?bucket_cycles:int ->
  ?complexity:(Tie.Component.t -> float) ->
  ?max_depth:int ->
  config:Sim.Config.t ->
  Template.model ->
  Extract.case ->
  t
(** An engine for one workload.  [max_depth] caps the tracked call
    stack (default 128); the other parameters mirror
    {!Attribution.create}. *)

val observer : t -> Sim.Cpu.observer
(** The engine as a simulation observer; attach it to the run being
    profiled (before the first step — see {!Sim.Cpu.add_observer}). *)

val finish : t -> cycles:int -> instructions:int -> report
(** Close the books after the observed simulation and check
    conservation.  [cycles] and [instructions] come from the simulator
    outcome. *)

val run :
  ?config:Sim.Config.t ->
  ?bucket_cycles:int ->
  ?complexity:(Tie.Component.t -> float) ->
  ?max_depth:int ->
  ?observers:Sim.Cpu.observer list ->
  Template.model ->
  Extract.case ->
  report
(** Simulate the case once with the profiling engine (and any extra
    [observers]) attached, under a [profile:] trace span; bumps the
    [profile_*] metrics family when metrics are enabled. *)

val check : report -> float * float
(** [(cycle gap, energy gap)], both relative to the run totals: the
    conservation oracle.  Tests assert cycles at exactly 0 and energy
    below 1e-6. *)

val pp_table : ?top:int -> Format.formatter -> report -> unit
(** Hottest-blocks table (default top 10) with per-block and cumulative
    cycle shares, stalls, cache misses and energy. *)

val pp_annotate : Format.formatter -> report -> unit
(** Annotated disassembly: every instruction slot with its retirement
    count and cycle/energy shares, labels interleaved. *)

val pp_opcodes : Format.formatter -> report -> unit
(** Per-opcode histogram, descending cycles. *)

val folded_lines : ?energy:bool -> report -> string
(** Brendan-Gregg collapsed stacks, one [stack count] line each —
    counts are cycles, or rounded picojoules with [~energy:true].
    Feed to a flame-graph renderer. *)

val to_json : ?top:int -> report -> string
(** Full report as JSON (all executed blocks unless [top] is given —
    conservation checks need the complete set); energies in picojoules,
    conservation gaps included. *)
