lib/isa/asm_parser.ml: Array Format Instr List Program Reg String
