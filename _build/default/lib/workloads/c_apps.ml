type capp = {
  name : string;
  case : Core.Extract.case;
  expected : int;
}

let build ?extension name source =
  let ast = Cc.Parser.parse source in
  let compiled = Cc.Codegen.compile ast in
  let expected = (Cc.Interp.run ast).Cc.Interp.r_return in
  { name;
    case = Core.Extract.case ?extension name compiled.Cc.Codegen.c_asm;
    expected }

let matmul () =
  build "c_matmul"
    "int a[64]; int b[64]; int c[64];\n\
     int main() {\n\
    \  int x = 7;\n\
    \  for (int i = 0; i < 64; i = i + 1) {\n\
    \    x = (x * 1103515245 + 12345) & 0xffff;\n\
    \    a[i] = x & 0xff;\n\
    \    x = (x * 1103515245 + 12345) & 0xffff;\n\
    \    b[i] = x & 0xff;\n\
    \  }\n\
    \  for (int i = 0; i < 8; i = i + 1) {\n\
    \    for (int j = 0; j < 8; j = j + 1) {\n\
    \      int s = 0;\n\
    \      for (int k = 0; k < 8; k = k + 1) {\n\
    \        s = s + a[i * 8 + k] * b[k * 8 + j];\n\
    \      }\n\
    \      c[i * 8 + j] = s;\n\
    \    }\n\
    \  }\n\
    \  int sum = 0;\n\
    \  for (int i = 0; i < 64; i = i + 1) { sum = sum ^ c[i] + i; }\n\
    \  return sum;\n\
     }"

let crc32 () =
  build "c_crc32"
    "int data[64];\n\
     int main() {\n\
    \  int x = 99;\n\
    \  for (int i = 0; i < 64; i = i + 1) {\n\
    \    x = (x * 1103515245 + 12345) & 0x7fffffff;\n\
    \    data[i] = x & 0xff;\n\
    \  }\n\
    \  int crc = 0xffffffff;\n\
    \  for (int i = 0; i < 64; i = i + 1) {\n\
    \    crc = crc ^ data[i];\n\
    \    for (int k = 0; k < 8; k = k + 1) {\n\
    \      if (crc & 1) { crc = (crc >> 1 & 0x7fffffff) ^ 0xedb88320; }\n\
    \      else { crc = crc >> 1 & 0x7fffffff; }\n\
    \    }\n\
    \  }\n\
    \  return crc ^ 0xffffffff;\n\
     }"

let histogram () =
  build "c_histogram"
    "int bins[16];\n\
     int main() {\n\
    \  int x = 3;\n\
    \  for (int i = 0; i < 256; i = i + 1) {\n\
    \    x = (x * 1103515245 + 12345) & 0x7fffffff;\n\
    \    int v = (x >> 8) & 15;\n\
    \    bins[v] = bins[v] + 1;\n\
    \  }\n\
    \  return bins[0] ^ bins[5] * 256 ^ bins[11] * 65536;\n\
     }"

let string_search () =
  build "c_strsearch"
    "int hay[128]; int needle[4] = {7, 3, 1, 5};\n\
     int main() {\n\
    \  int x = 41;\n\
    \  for (int i = 0; i < 128; i = i + 1) {\n\
    \    x = (x * 1103515245 + 12345) & 0x7fffffff;\n\
    \    hay[i] = (x >> 5) & 7;\n\
    \  }\n\
    \  int found = 0;\n\
    \  for (int i = 0; i < 125; i = i + 1) {\n\
    \    int ok = 1;\n\
    \    for (int k = 0; k < 4; k = k + 1) {\n\
    \      if (hay[i + k] != needle[k]) { ok = 0; }\n\
    \    }\n\
    \    if (ok) { found = found + i + 1; }\n\
    \  }\n\
    \  return found;\n\
     }"

let fir_source =
  "int signal[64];\n\
   int coeff[8] = {3, -1, 4, 1, -5, 9, 2, -6};\n\
   int output[64];\n\
   int main() {\n\
  \  int x = 12345;\n\
  \  for (int i = 0; i < 64; i = i + 1) {\n\
  \    x = (x * 1103515245 + 12345) & 0x7fff;\n\
  \    signal[i] = x;\n\
  \  }\n\
  \  for (int n = 7; n < 64; n = n + 1) {\n\
  \    __tie_clracc();\n\
  \    for (int k = 0; k < 8; k = k + 1) {\n\
  \      __tie_mac(signal[n - k], coeff[k]);\n\
  \    }\n\
  \    output[n] = __tie_rdacc();\n\
  \  }\n\
  \  return output[63];\n\
   }"

(* The interpreter cannot run intrinsics; replicate the FIR on the host
   with the MAC's 16x16 -> 32 wrap-around semantics. *)
let fir_expected () =
  let u32 v = v land 0xffff_ffff in
  let signal = Array.make 64 0 in
  let x = ref 12345 in
  for i = 0 to 63 do
    x := u32 ((!x * 1103515245) + 12345) land 0x7fff;
    signal.(i) <- !x
  done;
  let coeff = [| 3; -1; 4; 1; -5; 9; 2; -6 |] in
  let acc = ref 0 in
  for k = 0 to 7 do
    acc :=
      u32 (!acc + ((signal.(63 - k) land 0xffff) * (coeff.(k) land 0xffff)))
  done;
  !acc

let fir_mac () =
  let compiled = Cc.Codegen.compile_source fir_source in
  { name = "c_fir_mac";
    case =
      Core.Extract.case ~extension:Tie_lib.mac_ext "c_fir_mac"
        compiled.Cc.Codegen.c_asm;
    expected = fir_expected () }

let all () =
  [ matmul (); crc32 (); histogram (); string_search (); fir_mac () ]
