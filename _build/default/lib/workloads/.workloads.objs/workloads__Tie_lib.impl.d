lib/workloads/tie_lib.ml: Array Data List Option Tie
