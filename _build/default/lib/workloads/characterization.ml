open Isa.Builder

let case = Core.Extract.case

let assemble b = Isa.Program.assemble (seal b)

(* Common data placement (away from the default data base so explicit and
   automatic blocks never collide). *)
let arr1 = 0x11000
let arr2 = 0x13000
let big = 0x20000

let words_at b name ~addr ws =
  let bytes = Array.make (4 * Array.length ws) 0 in
  Array.iteri
    (fun i w ->
      for k = 0 to 3 do
        bytes.((4 * i) + k) <- (w lsr (8 * k)) land 0xff
      done)
    ws;
  bytes_at b name ~addr bytes

(* 1. Dense ALU chains. *)
let arith_dense () =
  let b = create "arith_dense" in
  label b "main";
  movi b a4 0x1234;
  movi b a5 0x0fed;
  loop_n b ~cnt:a2 400 (fun () ->
      add b a6 a4 a5;
      sub b a7 a6 a4;
      xor b a4 a7 a5;
      addx4 b a5 a4 a6;
      or_ b a6 a5 a7;
      and_ b a7 a6 a4;
      max_ b a4 a6 a7;
      minu b a5 a4 a6;
      neg b a6 a5;
      abs_ b a7 a6;
      addi b a4 a4 3;
      subx2 b a5 a5 a4;
      nsau b a6 a5;
      sext b a7 a5 15;
      addmi b a4 a4 1);
  halt b;
  case "arith_dense" (assemble b)

(* 2. Multiplier pressure. *)
let arith_mul () =
  let b = create "arith_mul" in
  label b "main";
  movi b a4 0x7531;
  movi b a5 0x1b2c;
  loop_n b ~cnt:a2 350 (fun () ->
      mull b a6 a4 a5;
      mul16s b a7 a6 a4;
      mul16u b a4 a7 a5;
      addi b a5 a5 17;
      mull b a6 a5 a4;
      add b a4 a6 a7);
  halt b;
  case "arith_mul" (assemble b)

(* 3. Shifter pressure. *)
let shift_mix () =
  let b = create "shift_mix" in
  label b "main";
  movi b a4 0x4d2f;
  movi b a5 11;
  movi b a3 0x5ace;
  loop_n b ~cnt:a2 350 (fun () ->
      slli b a6 a4 3;
      srli b a7 a4 5;
      xor b a4 a4 a7;       (* keep operand entropy alive *)
      ssl b a5;
      sll b a6 a4;
      ssr b a5;
      srl b a7 a6;
      src b a3 a6 a7;
      ssai b 7;
      sra b a6 a4;
      extui b a7 a6 4 12;
      xor b a4 a4 a3;
      addi b a4 a4 0x35;
      addi b a5 a5 3);
  halt b;
  case "shift_mix" (assemble b)

(* 4/5. Memory streams.  The footprint (2 KB) fits in the data cache so
   the load/store columns stay decoupled from the miss column; stored
   values evolve so bus and array toggling is realistic. *)
let stream name ~loads ~stores =
  let b = create name in
  words_at b "src" ~addr:arr1 (Data.words ~seed:41 256);
  label b "main";
  movi b a6 0x3c96_a55a;
  loop_n b ~cnt:a2 5 (fun () ->
      movi b a4 arr1;
      movi b a5 arr2;
      loop_n b ~cnt:a3 256 (fun () ->
          if loads then l32i b a6 a4 0 else xor b a6 a6 a4;
          if loads then l32i b a7 a4 4 else addx2 b a7 a6 a3;
          (if stores then begin
             s32i b a6 a5 0;
             s32i b a7 a5 4
           end);
          addi b a4 a4 8;
          addi b a5 a5 8));
  halt b;
  case name (assemble b)

let load_stream () = stream "load_stream" ~loads:true ~stores:false
let store_stream () = stream "store_stream" ~loads:false ~stores:true

(* 7. Taken-branch pressure. *)
let branch_taken () =
  let b = create "branch_taken" in
  label b "main";
  movi b a4 0;
  movi b a5 0;
  loop_n b ~cnt:a2 400 (fun () ->
      let l1 = fresh b "t" in
      let l2 = fresh b "t" in
      let l3 = fresh b "t" in
      beq b a4 a5 l1;       (* always taken *)
      addi b a4 a4 1;       (* skipped *)
      label b l1;
      bgez b a4 l2;         (* always taken *)
      addi b a5 a5 1;
      label b l2;
      bnei b a4 99999 l3;   (* always taken *)
      nop b;
      label b l3;
      addi b a6 a6 1);
  halt b;
  case "branch_taken" (assemble b)

(* 8. Untaken-branch pressure. *)
(* Branch operands vary every iteration while every condition stays
   false by construction: a4 is a positive 16-bit value (bit 30 clear),
   a6 = a4 + 2^30 and a7 = lnot a4. *)
let branch_untaken () =
  let b = create "branch_untaken" in
  label b "main";
  movi b a3 0x2b67;
  movi b a8 0x4000_0000;
  movi b a9 (-1);
  let skip = fresh b "end" in
  loop_n b ~cnt:a2 400 (fun () ->
      addi b a3 a3 12345;
      extui b a4 a3 0 16;
      addi b a4 a4 1;
      add b a6 a4 a8;
      xor b a7 a4 a9;
      beq b a4 a6 skip;
      bltz b a4 skip;
      beqz b a4 skip;
      bgeu b a4 a6 skip;
      beqi b a4 (-5) skip;
      bany b a4 a7 skip;
      bbsi b a4 30 skip);
  label b skip;
  halt b;
  case "branch_untaken" (assemble b)

(* 9. Windowed call tree (forces overflow/underflow spills). *)
let call_tree () =
  let b = create "call_tree" in
  label b "main";
  movi b a1 0x80000;
  loop_n b ~cnt:a2 40 (fun () -> call8 b "f1");
  halt b;
  let chain n next =
    label b (Printf.sprintf "f%d" n);
    entry b a1 16;
    addi b a10 a10 1;
    (match next with
     | Some m -> call8 b (Printf.sprintf "f%d" m)
     | None -> ());
    addi b a11 a10 2;
    retw b
  in
  for i = 1 to 9 do
    chain i (if i < 9 then Some (i + 1) else None)
  done;
  case "call_tree" (assemble b)

(* 10. Jumps, indirect jumps and non-windowed calls. *)
let jump_mix () =
  let b = create "jump_mix" in
  label b "main";
  movi b a1 0x80000;
  loop_n b ~cnt:a2 300 (fun () ->
      let mid = fresh b "mid" in
      let after = fresh b "after" in
      j b mid;
      nop b;
      label b mid;
      call0 b "leaf";
      l32r b a6 "after_addr";
      jx b a6;
      nop b;
      label b after;
      lit_addr b "after_addr" after;
      addi b a7 a7 1);
  halt b;
  label b "leaf";
  addi b a4 a4 1;
  ret b;
  case "jump_mix" (assemble b)

(* 11. Instruction-cache thrash: straight-line body larger than the
   16 KB instruction cache, iterated. *)
let icache_thrash () =
  let b = create "icache_thrash" in
  label b "main";
  movi b a4 1;
  movi b a5 3;
  movi b a2 8;
  label b "outer";
  for i = 0 to 6499 do
    match i mod 5 with
    | 0 -> add b a6 a4 a5
    | 1 -> xor b a7 a6 a4
    | 2 -> addi b a4 a4 1
    | 3 -> sub b a5 a7 a6
    | _ -> or_ b a6 a5 a4
  done;
  addi b a2 a2 (-1);
  bnez b a2 "outer";
  halt b;
  case "icache_thrash" (assemble b)

(* 12. Data-cache thrash: conflict-stride walks (all map to one set). *)
let dcache_thrash () =
  let b = create "dcache_thrash" in
  words_at b "bigarr" ~addr:big (Data.words ~seed:42 64);
  label b "main";
  loop_n b ~cnt:a2 200 (fun () ->
      movi b a4 big;
      loop_n b ~cnt:a3 8 (fun () ->
          l32i b a5 a4 0;
          s32i b a5 a4 4;
          addmi b a4 a4 16 (* stride 4096: same cache set every time *)))
  ;
  halt b;
  case "dcache_thrash" (assemble b)

(* 13. Code in the uncached region. *)
let uncached_code () =
  let b = create "uncached_code" in
  label b "main";
  movi b a4 0;
  loop_n b ~cnt:a2 150 (fun () ->
      addi b a4 a4 1;
      xor b a5 a4 a2;
      add b a6 a5 a4);
  halt b;
  let p = seal b in
  let asm =
    Isa.Program.assemble ~code_base:Sim.Config.default.Sim.Config.uncached_base
      ~data_base:(Sim.Config.default.Sim.Config.uncached_base + 0x10000) p
  in
  case "uncached_code" asm

(* 14. Load-use and multiply-use interlock chains. *)
let interlock_chain () =
  let b = create "interlock_chain" in
  words_at b "ptrs" ~addr:arr1 (Data.words ~seed:43 256);
  label b "main";
  movi b a4 arr1;
  loop_n b ~cnt:a2 256 (fun () ->
      l32i b a5 a4 0;
      addi b a6 a5 1;        (* load-use interlock *)
      l32i b a7 a4 4;
      add b a5 a7 a6;        (* load-use interlock *)
      mull b a6 a5 a7;
      add b a7 a6 a5;        (* mull-use interlock *)
      addi b a4 a4 8);
  halt b;
  case "interlock_chain" (assemble b)

(* 16-25. Custom-component coverage: one program per primary category.
   Each program also sprinkles in the next category's instruction so
   every structural column appears in at least two programs at different
   densities — without that, the side-effect variable and the structural
   columns are pairwise collinear and the regression cannot split them. *)
let emit_cover_custom b cat ~dst srcs =
  let cname = Tie_lib.coverage_insn_name cat in
  let need n =
    if List.length srcs < n then
      invalid_arg "emit_cover_custom: not enough source registers"
  in
  match cat with
  | Tie.Component.Custom_register ->
    need 1;
    custom b "xregw" [ List.nth srcs 0 ];
    custom b "xregbump" [];
    custom b "xregr" ~dst []
  | Tie.Component.Tie_mac | Tie.Component.Tie_add | Tie.Component.Tie_csa ->
    need 3;
    custom b cname ~dst [ List.nth srcs 0; List.nth srcs 1; List.nth srcs 2 ]
  | Tie.Component.Table ->
    need 1;
    custom b cname ~dst [ List.nth srcs 0 ]
  | Tie.Component.Multiplier | Tie.Component.Adder | Tie.Component.Logic
  | Tie.Component.Shifter | Tie.Component.Tie_mult ->
    need 2;
    custom b cname ~dst [ List.nth srcs 0; List.nth srcs 1 ]

let coverage_case cat ~companion ~iters ~seed =
  let ext = Tie_lib.coverage_pair cat companion in
  let cname = Tie_lib.coverage_insn_name cat in
  let b = create ("cover_" ^ cname) in
  words_at b "cdata" ~addr:arr1 (Data.words ~seed (2 * iters));
  label b "main";
  movi b a4 arr1;
  movi b a5 0x1357;
  loop_n b ~cnt:a2 iters (fun () ->
      l32i b a6 a4 0;
      l32i b a7 a4 4;
      emit_cover_custom b cat ~dst:a5 [ a6; a7; a5 ];
      emit_cover_custom b cat ~dst:a3 [ a7; a5; a6 ];
      emit_cover_custom b cat ~dst:a5 [ a5; a6; a7 ];
      emit_cover_custom b companion ~dst:a3 [ a6; a3; a7 ];
      add b a5 a5 a3;
      addi b a4 a4 8);
  halt b;
  case ~extension:ext ("cover_" ^ cname) (assemble b)

(* Custom-mix programs: extensions spanning several component categories
   at once, with component-to-side-effect ratios different from the
   single-category coverage programs.  They break the rank deficiency
   between the regfile side-effect variable and the structural columns. *)
let custom_mix_gf () =
  let b = create "custom_mix_gf" in
  words_at b "gfd" ~addr:arr1
    (Array.map (fun w -> w land 0xff) (Data.words ~seed:61 600));
  label b "main";
  movi b a4 arr1;
  custom b "clrsyn" [];
  loop_n b ~cnt:a2 300 (fun () ->
      l32i b a5 a4 0;
      l32i b a6 a4 4;
      custom b "gfmul" ~dst:a7 [ a5; a6 ];
      custom b "gfmacc" ~imm:29 [ a7 ];
      add b a5 a5 a7;
      addi b a4 a4 8);
  custom b "rdsyn" ~dst:a3 [];
  halt b;
  case ~extension:Tie_lib.gfmac_ext "custom_mix_gf" (assemble b)

let custom_mix_mac () =
  let b = create "custom_mix_mac" in
  words_at b "macd" ~addr:arr1
    (Array.map (fun w -> w land 0xffff) (Data.words ~seed:62 700));
  label b "main";
  movi b a4 arr1;
  custom b "clracc" [];
  loop_n b ~cnt:a2 320 (fun () ->
      l32i b a5 a4 0;
      l32i b a6 a4 4;
      custom b "mac" [ a5; a6 ];
      custom b "mac" [ a6; a5 ];
      custom b "rdacc" ~dst:a7 [];
      xor b a5 a5 a7;
      addi b a4 a4 8);
  halt b;
  case ~extension:Tie_lib.mac_ext "custom_mix_mac" (assemble b)

let categories_with_iters =
  (* (primary, companion, iterations, data seed); companions rotate so
     every category appears both as a primary (three per loop) and as
     another program's companion (one per loop). *)
  let cats =
    [ (Tie.Component.Multiplier, 320, 51);
      (Tie.Component.Adder, 500, 52);
      (Tie.Component.Logic, 450, 53);
      (Tie.Component.Shifter, 280, 54);
      (Tie.Component.Custom_register, 260, 55);
      (Tie.Component.Tie_mult, 330, 56);
      (Tie.Component.Tie_mac, 300, 57);
      (Tie.Component.Tie_add, 420, 58);
      (Tie.Component.Tie_csa, 380, 59);
      (Tie.Component.Table, 360, 60) ]
  in
  let n = List.length cats in
  List.mapi
    (fun i (cat, iters, seed) ->
      let companion, _, _ = List.nth cats ((i + 1) mod n) in
      (cat, companion, iters, seed))
    cats

let suite () =
  [ arith_dense (); arith_mul (); shift_mix ();
    load_stream (); store_stream ();
    branch_taken (); branch_untaken ();
    call_tree (); jump_mix ();
    icache_thrash (); dcache_thrash (); uncached_code ();
    interlock_chain () ]
  @ List.map
      (fun (cat, companion, iters, seed) ->
        coverage_case cat ~companion ~iters ~seed)
      categories_with_iters
  @ [ custom_mix_gf (); custom_mix_mac () ]

let find name =
  match List.find_opt (fun c -> c.Core.Extract.case_name = name) (suite ()) with
  | Some c -> c
  | None -> raise Not_found

let names () = List.map (fun c -> c.Core.Extract.case_name) (suite ())
