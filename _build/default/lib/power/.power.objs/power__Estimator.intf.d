lib/power/estimator.mli: Blocks Isa Sim Tie
