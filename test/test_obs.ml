(* Tests for the observability substrate: metrics registry, trace
   recorder (Chrome trace-event export), waveform accumulator and the
   minimal JSON parser used for round-trips.  Metrics and Trace are
   process-global, so every test restores the disabled default. *)

let check = Alcotest.check
let fail = Alcotest.fail

let with_obs f =
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ())
    f

(* --- Json ------------------------------------------------------------------ *)

let test_json_parse () =
  let j =
    Obs.Json.parse
      {|{"a": 1, "b": [true, false, null], "c": {"d": "x\n\"y\""}, "e": -2.5e2}|}
  in
  check (Alcotest.float 1e-9) "int" 1.0 Obs.Json.(to_float (member "a" j));
  check Alcotest.int "array length" 3
    (List.length Obs.Json.(to_list (member "b" j)));
  check Alcotest.string "escapes" "x\n\"y\""
    Obs.Json.(to_string (member "d" (member "c" j)));
  check (Alcotest.float 1e-9) "exponent" (-250.0)
    Obs.Json.(to_float (member "e" j));
  (match Obs.Json.parse "{\"a\": 1} garbage" with
   | exception Obs.Json.Parse_error _ -> ()
   | _ -> fail "trailing garbage accepted");
  match Obs.Json.parse "{\"a\":" with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> fail "truncated document accepted"

let test_json_edge_cases () =
  (* \u escapes across all three UTF-8 encoding lengths. *)
  let j = Obs.Json.parse "{\"s\": \"\\u0041\\n\\u00e9\\u20ac\"}" in
  check Alcotest.string "unicode escapes" "A\n\xc3\xa9\xe2\x82\xac"
    Obs.Json.(to_string (member "s" j));
  (* Deep nesting round-trips without blowing the parser up. *)
  let depth = 200 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "42"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec unwrap n v =
    if n = 0 then v
    else match Obs.Json.to_list v with
      | [ inner ] -> unwrap (n - 1) inner
      | _ -> fail "deep nesting lost elements"
  in
  check Alcotest.int "deep nesting" 42
    (Obs.Json.to_int (unwrap depth (Obs.Json.parse doc)));
  (* Exponent spellings. *)
  let j = Obs.Json.parse {|{"a": 1e3, "b": -2.5E-2, "c": 0.25e+1}|} in
  check (Alcotest.float 1e-12) "e" 1000.0 Obs.Json.(to_float (member "a" j));
  check (Alcotest.float 1e-12) "E-" (-0.025) Obs.Json.(to_float (member "b" j));
  check (Alcotest.float 1e-12) "e+" 2.5 Obs.Json.(to_float (member "c" j));
  (* Empty containers parse; trailing garbage in every position rejects. *)
  check Alcotest.int "empty array" 0
    (List.length (Obs.Json.to_list (Obs.Json.parse "[]")));
  (match Obs.Json.parse "{}" with
   | Obs.Json.Obj [] -> ()
   | _ -> fail "empty object misparsed");
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> fail (Printf.sprintf "accepted malformed %S" s))
    [ "[] []"; "1 2"; "{\"a\": 1}x"; "\"s\" \"t\""; "[1,]"; "{\"a\" 1}";
      "nul"; "01x" ]

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_disabled_is_noop () =
  Obs.Metrics.set_enabled false;
  let c = Obs.Metrics.counter "test_noop_total" in
  let before = Obs.Metrics.counter_value c in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:10 c;
  check Alcotest.int "disabled counter unchanged" before
    (Obs.Metrics.counter_value c)

let test_metrics_counter_and_labels () =
  with_obs (fun () ->
      let a = Obs.Metrics.counter ~labels:[ ("k", "a") ] "test_lbl_total" in
      let b = Obs.Metrics.counter ~labels:[ ("k", "b") ] "test_lbl_total" in
      let v0a = Obs.Metrics.counter_value a in
      let v0b = Obs.Metrics.counter_value b in
      Obs.Metrics.inc a;
      Obs.Metrics.inc ~by:2 b;
      check Alcotest.int "label a" (v0a + 1) (Obs.Metrics.counter_value a);
      check Alcotest.int "label b" (v0b + 2) (Obs.Metrics.counter_value b);
      (* Same identity returns the same instrument. *)
      let a' = Obs.Metrics.counter ~labels:[ ("k", "a") ] "test_lbl_total" in
      Obs.Metrics.inc a';
      check Alcotest.int "same handle" (v0a + 2) (Obs.Metrics.counter_value a))

let test_metrics_histogram () =
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test_hist_seconds"
      in
      List.iter (Obs.Metrics.observe h) [ 0.5; 2.0; 5.0; 100.0 ];
      check Alcotest.int "count" 4 (Obs.Metrics.histogram_count h);
      check (Alcotest.float 1e-9) "sum" 107.5 (Obs.Metrics.histogram_sum h);
      (* The registry JSON parses and carries the bucket counts. *)
      let j = Obs.Json.parse (Obs.Metrics.to_json ()) in
      let metrics = Obs.Json.(to_list (member "metrics" j)) in
      let hj =
        List.find
          (fun m ->
            Obs.Json.(to_string (member "name" m)) = "test_hist_seconds")
          metrics
      in
      let counts =
        List.map
          (fun b -> Obs.Json.(to_int (member "count" b)))
          Obs.Json.(to_list (member "buckets" hj))
      in
      check (Alcotest.list Alcotest.int) "bucket counts" [ 1; 2; 1 ] counts)

let test_metrics_snapshot_merge () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test_merge_total" in
      Obs.Metrics.inc ~by:3 c;
      let snap = Obs.Metrics.snapshot () in
      Obs.Metrics.merge snap;
      (* Counters add on merge: 3 own + 3 from the snapshot. *)
      check Alcotest.int "merged counter" 6 (Obs.Metrics.counter_value c))

let test_metrics_snapshot_diff () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test_diff_total" in
      let g = Obs.Metrics.gauge "test_diff_gauge" in
      let h =
        Obs.Metrics.histogram ~buckets:[| 1.0 |] "test_diff_seconds"
      in
      Obs.Metrics.inc ~by:2 c;
      Obs.Metrics.set g 1.0;
      Obs.Metrics.observe h 0.5;
      let earlier = Obs.Metrics.snapshot () in
      Obs.Metrics.inc ~by:5 c;
      Obs.Metrics.set g 9.0;
      Obs.Metrics.observe h 3.0;
      let later = Obs.Metrics.snapshot () in
      let d = Obs.Metrics.snapshot_diff later earlier in
      let find n =
        let _, _, _, v = List.find (fun (n', _, _, _) -> n' = n) d in
        v
      in
      (match find "test_diff_total" with
       | Obs.Metrics.S_counter 5 -> ()
       | Obs.Metrics.S_counter n ->
         fail (Printf.sprintf "counter delta %d, want 5" n)
       | _ -> fail "counter row lost its type");
      (match find "test_diff_gauge" with
       | Obs.Metrics.S_gauge v ->
         check (Alcotest.float 1e-9) "gauge keeps later" 9.0 v
       | _ -> fail "gauge row lost its type");
      match find "test_diff_seconds" with
      | Obs.Metrics.S_histogram (_, counts, sum, count) ->
        check Alcotest.int "histogram count delta" 1 count;
        check (Alcotest.float 1e-9) "histogram sum delta" 3.0 sum;
        check (Alcotest.list Alcotest.int) "bucket deltas" [ 0; 1 ]
          (Array.to_list counts)
      | _ -> fail "histogram row lost its type")

let test_metrics_snapshot_consistency () =
  (* Concurrent observers must never yield a torn snapshot: in every
     capture the histogram's bucket counts sum to _count and (all
     observations being 1.0) _sum equals _count exactly. *)
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 0.5; 1.5 |]
          ~labels:[ ("k", "hammer") ]
          "test_hammer_seconds"
      in
      let stop = Atomic.make false in
      let writers =
        List.init 4 (fun _ ->
            Thread.create
              (fun () ->
                while not (Atomic.get stop) do
                  Obs.Metrics.observe h 1.0
                done)
              ())
      in
      let torn = ref [] in
      for i = 1 to 200 do
        let snap = Obs.Metrics.snapshot () in
        match
          List.find_opt
            (fun (n, ls, _, _) ->
              n = "test_hammer_seconds" && ls = [ ("k", "hammer") ])
            snap
        with
        | Some (_, _, _, Obs.Metrics.S_histogram (_, counts, sum, count)) ->
          let bucket_sum = Array.fold_left ( + ) 0 counts in
          if bucket_sum <> count then
            torn := Printf.sprintf "capture %d: buckets %d vs count %d" i
                      bucket_sum count :: !torn;
          if Float.abs (sum -. float_of_int count) > 1e-6 then
            torn := Printf.sprintf "capture %d: sum %g vs count %d" i sum
                      count :: !torn
        | _ -> torn := Printf.sprintf "capture %d: row missing" i :: !torn
      done;
      Atomic.set stop true;
      List.iter Thread.join writers;
      match !torn with
      | [] -> ()
      | first :: _ ->
        fail
          (Printf.sprintf "%d torn snapshots, e.g. %s" (List.length !torn)
             first))

(* --- Export (OpenMetrics) --------------------------------------------------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_export_openmetrics () =
  with_obs (fun () ->
      let c =
        Obs.Metrics.counter ~help:"help \"quoted\"\nline"
          ~labels:[ ("k", "a\"b\\c\nd") ]
          "test_om_total"
      in
      let g = Obs.Metrics.gauge "test_om_gauge" in
      let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test_om_seconds" in
      Obs.Metrics.inc ~by:7 c;
      Obs.Metrics.set g 2.5;
      List.iter (Obs.Metrics.observe h) [ 0.5; 5.0; 50.0 ];
      let text = Obs.Export.to_openmetrics () in
      (* Counter family drops the _total suffix in TYPE, keeps it in the
         sample; label values escape quote/backslash/newline. *)
      List.iter
        (fun frag ->
          if not (contains text frag) then
            fail (Printf.sprintf "missing %S in exposition" frag))
        [ "# TYPE test_om counter";
          "# HELP test_om help \"quoted\"\\nline";
          "test_om_total{k=\"a\\\"b\\\\c\\nd\"} 7";
          "# TYPE test_om_gauge gauge";
          "test_om_gauge 2.5";
          "# TYPE test_om_seconds histogram";
          "test_om_seconds_bucket{le=\"1\"} 1";
          "test_om_seconds_bucket{le=\"10\"} 2";
          "test_om_seconds_bucket{le=\"+Inf\"} 3";
          "test_om_seconds_sum 55.5";
          "test_om_seconds_count 3" ];
      (* Well-formed: ends with the EOF marker, no family header twice. *)
      check Alcotest.bool "EOF terminator" true
        (Filename.check_suffix text "# EOF\n");
      let type_lines =
        String.split_on_char '\n' text
        |> List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
      in
      check Alcotest.int "one TYPE per family"
        (List.length (List.sort_uniq compare type_lines))
        (List.length type_lines))

let test_export_quantile () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  let counts = [| 2; 2; 4; 0 |] in
  let q p = Obs.Export.quantile ~bounds ~counts p in
  let check_q name want got =
    match got with
    | Some v -> check (Alcotest.float 1e-9) name want v
    | None -> fail (name ^ ": no estimate from a populated histogram")
  in
  (* rank q*total walked through per-bucket counts, interpolated inside
     the selected bucket (first bucket's lower edge is 0). *)
  check_q "median" 2.0 (q 0.5);
  check_q "q1 at a bucket edge" 1.0 (q 0.25);
  check_q "interpolates inside a bucket" 0.5 (q 0.125);
  check_q "max lands on the last bound" 4.0 (q 1.0);
  (* Ranks in the +Inf bucket report the last finite bound (the
     Prometheus histogram_quantile convention). *)
  check_q "+Inf bucket clamps to last bound" 4.0
    (Obs.Export.quantile ~bounds ~counts:[| 0; 0; 0; 5 |] 0.9);
  (* No finite bounds at all: nothing to interpolate against. *)
  check_q "no finite bounds reports 0" 0.0
    (Obs.Export.quantile ~bounds:[||] ~counts:[| 3 |] 0.5);
  check Alcotest.bool "empty histogram is None" true
    (Obs.Export.quantile ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5 = None);
  (match Obs.Export.quantile ~bounds ~counts 2.0 with
   | exception Invalid_argument _ -> ()
   | _ -> fail "q outside [0, 1] accepted");
  (match Obs.Export.quantile ~bounds ~counts Float.nan with
   | exception Invalid_argument _ -> ()
   | _ -> fail "NaN q accepted");
  match Obs.Export.quantile ~bounds ~counts:[| 1; 2 |] 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "shape mismatch accepted"

let test_export_snapshot_quantile () =
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 0.1; 1.0 |]
          ~labels:[ ("op", "x"); ("k", "v") ]
          "test_snapq_seconds"
      in
      List.iter (Obs.Metrics.observe h) [ 0.05; 0.05; 0.5; 0.5 ];
      let snap = Obs.Metrics.snapshot () in
      (* Label lookup is order-insensitive. *)
      (match
         Obs.Export.snapshot_quantile snap ~name:"test_snapq_seconds"
           ~labels:[ ("k", "v"); ("op", "x") ] 0.5
       with
       | Some v -> check (Alcotest.float 1e-9) "median from snapshot" 0.1 v
       | None -> fail "labelled histogram row not found");
      check Alcotest.bool "absent name is None" true
        (Obs.Export.snapshot_quantile snap ~name:"test_snapq_nosuch" 0.5
         = None);
      check Alcotest.bool "label mismatch is None" true
        (Obs.Export.snapshot_quantile snap ~name:"test_snapq_seconds"
           ~labels:[ ("op", "y") ] 0.5
         = None))

let test_export_snapshot_delta () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test_om_delta_total" in
      Obs.Metrics.inc ~by:3 c;
      let earlier = Obs.Metrics.snapshot () in
      Obs.Metrics.inc ~by:4 c;
      let later = Obs.Metrics.snapshot () in
      let text =
        Obs.Export.to_openmetrics
          ~snapshot:(Obs.Metrics.snapshot_diff later earlier) ()
      in
      if not (contains text "test_om_delta_total 4") then
        fail "delta exposition should carry only the between-scrape delta")

(* --- Log -------------------------------------------------------------------- *)

let with_log_file f =
  let path = Filename.temp_file "xenergy-test-log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.close ();
      Obs.Log.set_level Obs.Log.Debug;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_records path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map Obs.Json.parse

let test_log_records () =
  with_log_file (fun path ->
      Obs.Log.open_file path;
      check Alcotest.bool "enabled" true (Obs.Log.enabled ());
      Obs.Log.event "test:one"
        [ ("s", Obs.Trace.S "a\"b\nc"); ("i", Obs.Trace.I 42);
          ("f", Obs.Trace.F 2.5); ("b", Obs.Trace.B true);
          ("nan", Obs.Trace.F Float.nan) ];
      Obs.Log.event ~level:Obs.Log.Error "test:two" [];
      Obs.Log.close ();
      check Alcotest.bool "disabled after close" false (Obs.Log.enabled ());
      Obs.Log.event "test:dropped" [];
      match read_records path with
      | [ one; two ] ->
        check Alcotest.string "event name" "test:one"
          Obs.Json.(to_string (member "event" one));
        check Alcotest.string "level" "info"
          Obs.Json.(to_string (member "level" one));
        check Alcotest.bool "tid present" true
          (Obs.Json.(to_int (member "tid" one)) >= 0);
        check Alcotest.int "pid" (Unix.getpid ())
          Obs.Json.(to_int (member "pid" one));
        check Alcotest.bool "ts present" true
          (Obs.Json.(to_float (member "ts_us" one)) >= 0.0);
        check Alcotest.string "string field escaped" "a\"b\nc"
          Obs.Json.(to_string (member "s" one));
        check Alcotest.int "int field" 42 Obs.Json.(to_int (member "i" one));
        check (Alcotest.float 1e-9) "float field" 2.5
          Obs.Json.(to_float (member "f" one));
        (match Obs.Json.member "b" one with
         | Obs.Json.Bool true -> ()
         | _ -> fail "bool field lost");
        (* Non-finite floats have no JSON spelling: recorded as null so
           the line stays parseable. *)
        (match Obs.Json.member "nan" one with
         | Obs.Json.Null -> ()
         | _ -> fail "NaN should serialize as null");
        check Alcotest.string "error level" "error"
          Obs.Json.(to_string (member "level" two))
      | l -> fail (Printf.sprintf "%d records, want 2" (List.length l)))

let test_log_level_floor () =
  with_log_file (fun path ->
      Obs.Log.open_file ~level:Obs.Log.Warn path;
      Obs.Log.event ~level:Obs.Log.Debug "test:debug" [];
      Obs.Log.event ~level:Obs.Log.Info "test:info" [];
      Obs.Log.event ~level:Obs.Log.Warn "test:warn" [];
      Obs.Log.event ~level:Obs.Log.Error "test:error" [];
      Obs.Log.close ();
      let names =
        List.map
          (fun r -> Obs.Json.(to_string (member "event" r)))
          (read_records path)
      in
      check (Alcotest.list Alcotest.string) "only warn and above"
        [ "test:warn"; "test:error" ] names;
      check Alcotest.bool "level round trip" true
        (List.for_all
           (fun l ->
             Obs.Log.level_of_string (Obs.Log.level_to_string l) = Some l)
           [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ]))

let test_log_rotation () =
  with_log_file (fun path ->
      Obs.Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.set_enabled false;
          try Sys.remove (path ^ ".1") with Sys_error _ -> ())
      @@ fun () ->
      Obs.Log.open_file ~max_bytes:512 path;
      for i = 1 to 40 do
        Obs.Log.event "test:rotate"
          [ ("i", Obs.Trace.I i); ("pad", Obs.Trace.S (String.make 64 'x')) ]
      done;
      Obs.Log.close ();
      check Alcotest.bool "rotated sink exists" true
        (Sys.file_exists (path ^ ".1"));
      (* The rotation happens before the write that would cross the cap,
         so neither file ever exceeds it. *)
      check Alcotest.bool "live file within the cap" true
        ((Unix.stat path).Unix.st_size <= 512);
      check Alcotest.bool "rotated file within the cap" true
        ((Unix.stat (path ^ ".1")).Unix.st_size <= 512);
      (* Whole lines only on both sides of the rename: everything still
         parses, and together the files hold the newest records. *)
      let r1 = read_records (path ^ ".1") in
      let r0 = read_records path in
      check Alcotest.bool "records on both sides" true (r0 <> [] && r1 <> []);
      let last = List.nth r0 (List.length r0 - 1) in
      check Alcotest.int "newest record in the live file" 40
        Obs.Json.(to_int (member "i" last));
      match
        List.find_opt
          (fun (n, _, _, _) -> n = "log_rotations_total")
          (Obs.Metrics.snapshot ())
      with
      | Some (_, _, _, Obs.Metrics.S_counter n) ->
        check Alcotest.bool "rotations counted" true (n >= 1)
      | _ -> fail "log_rotations_total not registered")

(* --- Trace ------------------------------------------------------------------ *)

let test_trace_disabled_records_nothing () =
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  let r = Obs.Trace.with_span "quiet" (fun () -> 42) in
  check Alcotest.int "value returned" 42 r;
  check Alcotest.int "no events" 0 (List.length (Obs.Trace.events ()))

let test_trace_spans_and_json () =
  with_obs (fun () ->
      let r =
        Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
            Obs.Trace.with_span ~cat:"t" "inner" (fun () -> ());
            7)
      in
      check Alcotest.int "value returned" 7 r;
      Obs.Trace.thread_name ~tid:3 "worker 3";
      (match Obs.Trace.with_span "raiser" (fun () -> failwith "x") with
       | exception Failure _ -> ()
       | _ -> fail "exception swallowed");
      let j = Obs.Json.parse (Obs.Trace.to_json (Obs.Trace.events ())) in
      let evs = Obs.Json.(to_list (member "traceEvents" j)) in
      let name e = Obs.Json.(to_string (member "name" e)) in
      let names = List.map name evs in
      List.iter
        (fun n ->
          if not (List.mem n names) then fail (Printf.sprintf "missing %s" n))
        [ "outer"; "inner"; "raiser"; "thread_name" ];
      (* Inner completes before outer, so it is recorded first; both carry
         durations and the default tid 0. *)
      let inner = List.find (fun e -> name e = "inner") evs in
      let outer = List.find (fun e -> name e = "outer") evs in
      check Alcotest.int "tid" 0 Obs.Json.(to_int (member "tid" inner));
      check Alcotest.bool "outer encloses inner" true
        (Obs.Json.(to_float (member "ts" outer))
         <= Obs.Json.(to_float (member "ts" inner))
         && Obs.Json.(to_float (member "dur" outer))
            >= Obs.Json.(to_float (member "dur" inner))))

let test_trace_emit_all_preserves_lanes () =
  with_obs (fun () ->
      Obs.Trace.set_tid 5;
      Obs.Trace.with_span "foreign" (fun () -> ());
      Obs.Trace.set_tid 0;
      let shipped = Obs.Trace.drain () in
      check Alcotest.int "drained" 1 (List.length shipped);
      check Alcotest.int "cleared" 0 (List.length (Obs.Trace.events ()));
      Obs.Trace.emit_all shipped;
      match Obs.Trace.events () with
      | [ e ] -> check Alcotest.int "lane kept" 5 e.Obs.Trace.ev_tid
      | l -> fail (Printf.sprintf "%d events after emit_all" (List.length l)))

let sarg name e =
  match List.assoc_opt name e.Obs.Trace.ev_args with
  | Some (Obs.Trace.S s) -> Some s
  | _ -> None

let test_trace_context_ids () =
  (* Ids are fresh, well-formed hex and never collide in bulk. *)
  let ids = List.init 1000 (fun _ -> Obs.Trace.new_id ()) in
  check Alcotest.int "ids unique" 1000
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      check Alcotest.int "16 hex digits" 16 (String.length id);
      String.iter
        (fun c ->
          if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
            fail (Printf.sprintf "non-hex id %S" id))
        id)
    ids

let test_trace_context_spans () =
  with_obs (fun () ->
      check Alcotest.bool "no ambient context" true
        (Obs.Trace.context () = None);
      (* Without a context, spans carry no ids. *)
      Obs.Trace.with_span "bare" (fun () -> ());
      (match Obs.Trace.events () with
       | [ e ] -> check Alcotest.bool "bare span unstamped" true
                    (sarg "trace_id" e = None)
       | _ -> fail "expected one event");
      Obs.Trace.clear ();
      let root =
        { Obs.Trace.trace_id = Obs.Trace.new_id ();
          span_id = Obs.Trace.new_id ();
          parent_id = None }
      in
      Obs.Trace.with_context root (fun () ->
          Obs.Trace.with_span "outer" (fun () ->
              Obs.Trace.with_span "inner" (fun () -> ());
              Obs.Trace.instant "mark"));
      check Alcotest.bool "context restored after with_context" true
        (Obs.Trace.context () = None);
      let evs = Obs.Trace.events () in
      let find name =
        match List.find_opt (fun e -> e.Obs.Trace.ev_name = name) evs with
        | Some e -> e
        | None -> fail (Printf.sprintf "span %s missing" name)
      in
      let outer = find "outer" and inner = find "inner" in
      (* One trace id end to end; span ids chain parent -> child. *)
      check (Alcotest.option Alcotest.string) "outer shares the trace id"
        (Some root.Obs.Trace.trace_id) (sarg "trace_id" outer);
      check (Alcotest.option Alcotest.string) "inner shares the trace id"
        (Some root.Obs.Trace.trace_id) (sarg "trace_id" inner);
      check (Alcotest.option Alcotest.string) "outer is a child of the root"
        (Some root.Obs.Trace.span_id) (sarg "parent_id" outer);
      check (Alcotest.option Alcotest.string) "inner is a child of outer"
        (sarg "span_id" outer) (sarg "parent_id" inner);
      check Alcotest.bool "span ids distinct" true
        (sarg "span_id" outer <> sarg "span_id" inner);
      (* The instant inside outer is stamped with outer's child scope. *)
      check (Alcotest.option Alcotest.string) "instant shares the trace id"
        (Some root.Obs.Trace.trace_id) (sarg "trace_id" (find "mark")))

let test_trace_context_scopes () =
  (* Contexts are slotted by the installed scope key: two scopes hold
     independent contexts, and clearing one leaves the other. *)
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_context_key (fun () -> 0);
      Obs.Trace.set_context None)
  @@ fun () ->
  let scope = ref 1 in
  Obs.Trace.set_context_key (fun () -> !scope);
  let ctx n =
    { Obs.Trace.trace_id = n; span_id = n; parent_id = None }
  in
  scope := 1;
  Obs.Trace.set_context (Some (ctx "one"));
  scope := 2;
  Obs.Trace.set_context (Some (ctx "two"));
  check Alcotest.bool "scope 2 sees its own context" true
    (match Obs.Trace.context () with
     | Some c -> c.Obs.Trace.trace_id = "two"
     | None -> false);
  scope := 1;
  check Alcotest.bool "scope 1 undisturbed" true
    (match Obs.Trace.context () with
     | Some c -> c.Obs.Trace.trace_id = "one"
     | None -> false);
  Obs.Trace.set_context None;
  check Alcotest.bool "scope 1 cleared" true (Obs.Trace.context () = None);
  scope := 2;
  check Alcotest.bool "scope 2 still set" true
    (Obs.Trace.context () <> None);
  Obs.Trace.set_context None

(* --- Waveform ---------------------------------------------------------------- *)

let test_waveform_buckets () =
  let w = Obs.Waveform.create ~bucket_cycles:10 () in
  Obs.Waveform.add w ~cycle:0 ~energy_pj:1.0;
  Obs.Waveform.add w ~cycle:9 ~energy_pj:2.0;
  Obs.Waveform.add w ~cycle:10 ~energy_pj:4.0;
  Obs.Waveform.add w ~cycle:995 ~energy_pj:8.0;    (* forces growth *)
  check (Alcotest.float 1e-9) "total" 15.0 (Obs.Waveform.total_pj w);
  let bs = Obs.Waveform.buckets w in
  check Alcotest.int "buckets up to last touched" 100 (Array.length bs);
  check (Alcotest.float 1e-9) "bucket 0 accumulates" 3.0 (snd bs.(0));
  check (Alcotest.float 1e-9) "bucket 1" 4.0 (snd bs.(1));
  check (Alcotest.float 1e-9) "bucket 99" 8.0 (snd bs.(99));
  check Alcotest.int "bucket start cycle" 990 (fst bs.(99));
  let j = Obs.Json.parse (Obs.Waveform.to_json w) in
  check Alcotest.int "json bucket width" 10
    Obs.Json.(to_int (member "bucket_cycles" j));
  check Alcotest.string "unit stated" "pJ"
    Obs.Json.(to_string (member "unit" j))

let test_waveform_bucket_edges () =
  let w = Obs.Waveform.create ~bucket_cycles:10 () in
  (* A cycle exactly on a bucket boundary opens the next bucket; it
     never splits or double-counts. *)
  Obs.Waveform.add w ~cycle:10 ~energy_pj:1.0;
  Obs.Waveform.add w ~cycle:19 ~energy_pj:2.0;
  Obs.Waveform.add w ~cycle:20 ~energy_pj:4.0;
  let bs = Obs.Waveform.buckets w in
  check Alcotest.int "buckets up to last touched" 3 (Array.length bs);
  check (Alcotest.float 1e-9) "bucket 0 untouched" 0.0 (snd bs.(0));
  check Alcotest.int "edge bucket starts at its cycle" 10 (fst bs.(1));
  check (Alcotest.float 1e-9) "edge event opens its own bucket" 3.0
    (snd bs.(1));
  check (Alcotest.float 1e-9) "next boundary likewise" 4.0 (snd bs.(2));
  check (Alcotest.float 1e-9) "total conserves" 7.0 (Obs.Waveform.total_pj w);
  (* Negative cycles clamp to bucket 0 rather than crashing. *)
  Obs.Waveform.add w ~cycle:(-5) ~energy_pj:8.0;
  check (Alcotest.float 1e-9) "negative cycle clamps to bucket 0" 8.0
    (snd (Obs.Waveform.buckets w).(0))

let test_waveform_zero_cycles () =
  (* A zero-cycle program touches no bucket; every renderer must still
     produce well-formed output. *)
  let w = Obs.Waveform.create () in
  check Alcotest.int "no buckets" 0 (Array.length (Obs.Waveform.buckets w));
  check (Alcotest.float 0.0) "zero total" 0.0 (Obs.Waveform.total_pj w);
  let j = Obs.Json.parse (Obs.Waveform.to_json w) in
  check Alcotest.int "json: empty bucket list" 0
    (List.length Obs.Json.(to_list (member "buckets" j)));
  check Alcotest.bool "empty waveform named" true
    (contains (Format.asprintf "%a" Obs.Waveform.pp w) "empty waveform");
  (* reset returns a used accumulator to exactly this state. *)
  Obs.Waveform.add w ~cycle:0 ~energy_pj:1.0;
  Obs.Waveform.reset w;
  check Alcotest.int "reset drops every bucket" 0
    (Array.length (Obs.Waveform.buckets w));
  check (Alcotest.float 0.0) "reset zeroes the total" 0.0
    (Obs.Waveform.total_pj w)

(* --- Profile ----------------------------------------------------------------- *)

let test_profile_slots () =
  let p = Obs.Profile.create () in
  check Alcotest.int "starts empty" 0 (Obs.Profile.cardinal p);
  Obs.Profile.record p ~energy_pj:1.5 ~cycles:2 7;
  Obs.Profile.record p ~stall_cycles:1 ~icache_miss:true ~cycles:3 7;
  Obs.Profile.record p ~dcache_miss:true ~energy_pj:0.5 ~cycles:5 9;
  check Alcotest.int "two slots" 2 (Obs.Profile.cardinal p);
  (match Obs.Profile.find p 7 with
   | Some s ->
     check Alcotest.int "hits accumulate" 2 s.Obs.Profile.hits;
     check Alcotest.int "cycles accumulate" 5 s.Obs.Profile.cycles;
     check Alcotest.int "stalls accumulate" 1 s.Obs.Profile.stall_cycles;
     check Alcotest.int "icache miss counted" 1 s.Obs.Profile.icache_misses;
     check Alcotest.int "no dcache miss here" 0 s.Obs.Profile.dcache_misses;
     check (Alcotest.float 1e-9) "energy accumulates" 1.5
       s.Obs.Profile.energy_pj
   | None -> fail "slot 7 missing");
  check Alcotest.bool "absent slot is None" true (Obs.Profile.find p 8 = None);
  let t = Obs.Profile.totals p in
  check Alcotest.int "total hits" 3 t.Obs.Profile.hits;
  check Alcotest.int "total cycles" 10 t.Obs.Profile.cycles;
  check Alcotest.int "total dcache misses" 1 t.Obs.Profile.dcache_misses;
  check (Alcotest.float 1e-9) "total energy" 2.0 t.Obs.Profile.energy_pj;
  check Alcotest.int "fold covers every slot" 10
    (Obs.Profile.fold (fun _ s acc -> acc + s.Obs.Profile.cycles) p 0);
  Obs.Profile.reset p;
  check Alcotest.int "reset empties" 0 (Obs.Profile.cardinal p)

let test_profile_stacks () =
  let s = Obs.Profile.Stacks.create ~max_depth:1 ~root:"main" () in
  check Alcotest.int "depth at root" 0 (Obs.Profile.Stacks.depth s);
  Obs.Profile.Stacks.record s ~cycles:1 ~energy_pj:0.5;
  Obs.Profile.Stacks.push s "f";
  check Alcotest.int "depth after push" 1 (Obs.Profile.Stacks.depth s);
  Obs.Profile.Stacks.record s ~cycles:2 ~energy_pj:1.0;
  Obs.Profile.Stacks.record_leaf s ~frame:"leaf" ~cycles:3 ~energy_pj:1.5;
  (* Beyond max_depth the frame is dropped but the depth is still
     tracked, so matched pushes/pops rebalance exactly. *)
  Obs.Profile.Stacks.push s "deep";
  check Alcotest.int "overflow still counted" 2 (Obs.Profile.Stacks.depth s);
  Obs.Profile.Stacks.record s ~cycles:4 ~energy_pj:2.0;
  Obs.Profile.Stacks.pop s;
  check Alcotest.int "pop rebalances overflow" 1 (Obs.Profile.Stacks.depth s);
  Obs.Profile.Stacks.record s ~cycles:8 ~energy_pj:4.0;
  Obs.Profile.Stacks.pop s;
  Obs.Profile.Stacks.pop s;  (* popping at the root is a no-op *)
  check Alcotest.int "pop at root clamps" 0 (Obs.Profile.Stacks.depth s);
  Obs.Profile.Stacks.record s ~cycles:16 ~energy_pj:8.0;
  let folded = Obs.Profile.Stacks.folded s in
  let row path =
    match List.find_opt (fun (p, _, _) -> p = path) folded with
    | Some (_, cycles, pj) -> (cycles, pj)
    | None -> fail (Printf.sprintf "stack %S missing" path)
  in
  check Alcotest.int "rows for touched nodes only" 3 (List.length folded);
  check Alcotest.bool "root accumulates across visits" true
    (row "main" = (17, 8.5));
  (* The capped frame's cost lands on its deepest kept ancestor. *)
  check Alcotest.bool "frame f, overflow folded in" true
    (row "main;f" = (14, 7.0));
  check Alcotest.bool "leaf attribution" true (row "main;f;leaf" = (3, 1.5));
  check Alcotest.bool "folded rows sorted by stack" true
    (let paths = List.map (fun (p, _, _) -> p) folded in
     paths = List.sort String.compare paths)

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "edge cases" `Quick test_json_edge_cases ] );
      ( "metrics",
        [ Alcotest.test_case "disabled no-op" `Quick
            test_metrics_disabled_is_noop;
          Alcotest.test_case "counters and labels" `Quick
            test_metrics_counter_and_labels;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "snapshot merge" `Quick
            test_metrics_snapshot_merge;
          Alcotest.test_case "snapshot diff" `Quick
            test_metrics_snapshot_diff;
          Alcotest.test_case "snapshot consistency under hammering" `Quick
            test_metrics_snapshot_consistency ] );
      ( "export",
        [ Alcotest.test_case "openmetrics" `Quick test_export_openmetrics;
          Alcotest.test_case "quantile" `Quick test_export_quantile;
          Alcotest.test_case "snapshot quantile" `Quick
            test_export_snapshot_quantile;
          Alcotest.test_case "snapshot delta" `Quick
            test_export_snapshot_delta ] );
      ( "log",
        [ Alcotest.test_case "records" `Quick test_log_records;
          Alcotest.test_case "level floor" `Quick test_log_level_floor;
          Alcotest.test_case "size-capped rotation" `Quick
            test_log_rotation ] );
      ( "trace",
        [ Alcotest.test_case "disabled no-op" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "spans + json" `Quick test_trace_spans_and_json;
          Alcotest.test_case "emit_all lanes" `Quick
            test_trace_emit_all_preserves_lanes;
          Alcotest.test_case "context ids" `Quick test_trace_context_ids;
          Alcotest.test_case "context spans" `Quick
            test_trace_context_spans;
          Alcotest.test_case "context scopes" `Quick
            test_trace_context_scopes ] );
      ( "waveform",
        [ Alcotest.test_case "buckets" `Quick test_waveform_buckets;
          Alcotest.test_case "bucket edges" `Quick
            test_waveform_bucket_edges;
          Alcotest.test_case "zero-cycle program" `Quick
            test_waveform_zero_cycles ] );
      ( "profile",
        [ Alcotest.test_case "per-slot accumulator" `Quick test_profile_slots;
          Alcotest.test_case "call stacks + folded" `Quick
            test_profile_stacks ] ) ]
