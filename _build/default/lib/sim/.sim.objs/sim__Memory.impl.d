lib/sim/memory.ml: Array Bytes Char Hashtbl List Printf
