lib/isa/program.ml: Array Encoding Format Hashtbl Instr List Option
