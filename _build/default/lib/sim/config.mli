(** Processor configuration.

    Defaults match the paper's experimental setup: a T1040-class base core
    at 187 MHz (0.18 um), 4-way set-associative 16 KB instruction and data
    caches, a 32-bit multiplier option and a 64-entry windowed register
    file. *)

type cache_config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  miss_penalty : int;   (** stall cycles per miss *)
}

type t = {
  icache : cache_config;
  dcache : cache_config;
  uncached_base : int;
  (** addresses at or above this bypass the caches *)
  uncached_fetch_penalty : int;
  uncached_data_penalty : int;
  branch_taken_penalty : int;  (** extra cycles on a taken branch or jump *)
  window_penalty : int;        (** stall cycles on window overflow/underflow *)
  freq_mhz : float;
  max_cycles : int;            (** simulation watchdog *)
}

val default_cache : cache_config

val default : t

val sets : cache_config -> int
(** Number of sets ([size / (ways * line)]). *)

val validate : t -> unit
(** @raise Invalid_argument if cache geometry is not a power of two or
    penalties are negative. *)
