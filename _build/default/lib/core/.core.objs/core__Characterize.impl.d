lib/core/characterize.ml: Array Extract Float Format List Power Printf Regress Sim Template Variables
