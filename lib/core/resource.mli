(** Dynamic resource-usage analysis (step 10 of the paper's flow).

    Walks the execution trace and derives the structural macro-model
    variables: for every custom-hardware component category, the
    complexity-weighted number of cycles in which instances of that
    category are active.  Both activation paths are covered:

    - a custom instruction activates all of its own component instances
      for its full latency;
    - a base instruction that drives the shared operand buses activates
      the bus-facing custom components at a reduced, architecturally
      fixed duty factor ([idle_weight]). *)

type t

val default_idle_weight : float
(** Duty factor of bus-facing custom hardware under base instructions;
    matches the bus-sharing activity of the reference architecture. *)

val create :
  ?idle_weight:float ->
  ?complexity:(Tie.Component.t -> float) ->
  Tie.Compile.compiled option ->
  t
(** [complexity] overrides the C(W) weighting (default
    {!Tie.Component.complexity}); used by the ablation studies. *)

val observe : t -> Sim.Event.t -> unit
(** Fold one retirement event into the per-category accumulators. *)

val observer : t -> Sim.Cpu.observer
(** {!observe} packaged for {!Sim.Cpu}'s observer list. *)

val totals : t -> float array
(** Complexity-weighted active cycles, indexed by
    [Tie.Component.category_index]. *)

val total_for : t -> Tie.Component.category -> float
(** One category's complexity-weighted active cycles. *)

val total_at : t -> int -> float
(** [total_at t i] reads the accumulator for the category whose
    [Tie.Component.category_index] is [i], without copying.  Hot-path
    variant of {!totals} for per-event folds (see
    {!Extract.fill_variables}). *)

val inert : t -> bool
(** True when the analyzer was created without an extension: no event
    can move the accumulators, so per-event folds may skip the category
    variables altogether. *)

val reset : t -> unit
(** Zero the accumulators so the analyzer can observe another run. *)
