lib/workloads/math_apps.mli: Core
