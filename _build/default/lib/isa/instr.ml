type binop =
  | Add | Addx2 | Addx4 | Addx8
  | Sub | Subx2 | Subx4 | Subx8
  | And_ | Or_ | Xor
  | Min | Max | Minu | Maxu
  | Mul16s | Mul16u | Mull

type unop = Abs | Neg | Nsa | Nsau

type cmov = Moveqz | Movnez | Movltz | Movgez

type bcond2 = Beq | Bne | Blt | Bge | Bltu | Bgeu | Bany | Bnone | Ball | Bnall

type bcondi = Beqi | Bnei | Blti | Bgei | Bltui | Bgeui

type bcondz = Beqz | Bnez | Bltz | Bgez

type load_op = L8ui | L16si | L16ui | L32i

type store_op = S8i | S16i | S32i

type custom_call = {
  cname : string;
  dst : Reg.t option;
  srcs : Reg.t list;
  cimm : int option;
}

type t =
  | Binop of binop * Reg.t * Reg.t * Reg.t
  | Unop of unop * Reg.t * Reg.t
  | Sext of Reg.t * Reg.t * int
  | Cmov of cmov * Reg.t * Reg.t * Reg.t
  | Addi of Reg.t * Reg.t * int
  | Addmi of Reg.t * Reg.t * int
  | Movi of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Extui of Reg.t * Reg.t * int * int
  | Slli of Reg.t * Reg.t * int
  | Srli of Reg.t * Reg.t * int
  | Srai of Reg.t * Reg.t * int
  | Sll of Reg.t * Reg.t
  | Srl of Reg.t * Reg.t
  | Sra of Reg.t * Reg.t
  | Src of Reg.t * Reg.t * Reg.t
  | Ssai of int
  | Ssl of Reg.t
  | Ssr of Reg.t
  | Load of load_op * Reg.t * Reg.t * int
  | L32r of Reg.t * string
  | Store of store_op * Reg.t * Reg.t * int
  | Branch2 of bcond2 * Reg.t * Reg.t * string
  | Branchi of bcondi * Reg.t * int * string
  | Branchz of bcondz * Reg.t * string
  | Bbit of bool * Reg.t * Reg.t * string
  | Bbiti of bool * Reg.t * int * string
  | J of string
  | Jx of Reg.t
  | Call0 of string
  | Callx0 of Reg.t
  | Call8 of string
  | Callx8 of Reg.t
  | Ret
  | Retw
  | Entry of Reg.t * int
  | Nop | Memw | Extw | Isync
  | Break
  | Custom of custom_call

type clazz =
  | Arith_class
  | Load_class
  | Store_class
  | Jump_class
  | Branch_class
  | Custom_class

let class_of = function
  | Binop _ | Unop _ | Sext _ | Cmov _ | Addi _ | Addmi _ | Movi _ | Mov _
  | Extui _ | Slli _ | Srli _ | Srai _ | Sll _ | Srl _ | Sra _ | Src _
  | Ssai _ | Ssl _ | Ssr _ | Entry _ | Nop | Memw | Extw | Isync | Break ->
    Arith_class
  | Load _ | L32r _ -> Load_class
  | Store _ -> Store_class
  | J _ | Jx _ | Call0 _ | Callx0 _ | Call8 _ | Callx8 _ | Ret | Retw ->
    Jump_class
  | Branch2 _ | Branchi _ | Branchz _ | Bbit _ | Bbiti _ -> Branch_class
  | Custom _ -> Custom_class

let is_branch i = class_of i = Branch_class

let is_control i =
  match class_of i with
  | Jump_class | Branch_class -> true
  | Arith_class | Load_class | Store_class | Custom_class -> false

let defs = function
  | Binop (_, d, _, _) | Cmov (_, d, _, _) | Src (d, _, _) -> [ d ]
  | Unop (_, d, _) | Sext (d, _, _) | Addi (d, _, _) | Addmi (d, _, _)
  | Mov (d, _) | Extui (d, _, _, _)
  | Slli (d, _, _) | Srli (d, _, _) | Srai (d, _, _)
  | Sll (d, _) | Srl (d, _) | Sra (d, _) ->
    [ d ]
  | Movi (d, _) | Load (_, d, _, _) | L32r (d, _) -> [ d ]
  | Call0 _ | Callx0 _ -> [ Reg.a 0 ]
  | Call8 _ | Callx8 _ -> [ Reg.a 8 ]  (* return address in callee's window *)
  | Entry (sp, _) -> [ sp ]
  | Ssai _ | Ssl _ | Ssr _
  | Store _ | Branch2 _ | Branchi _ | Branchz _ | Bbit _ | Bbiti _
  | J _ | Jx _ | Ret | Retw | Nop | Memw | Extw | Isync | Break ->
    []
  | Custom { dst; _ } -> (match dst with Some d -> [ d ] | None -> [])

let uses = function
  | Binop (_, _, s, t) | Src (_, s, t) | Branch2 (_, s, t, _)
  | Bbit (_, s, t, _) | Store (_, t, s, _) ->
    [ s; t ]
  | Cmov (_, d, s, t) -> [ d; s; t ]
  | Unop (_, _, s) | Sext (_, s, _) | Addi (_, s, _) | Addmi (_, s, _)
  | Mov (_, s) | Extui (_, s, _, _)
  | Slli (_, s, _) | Srli (_, s, _) | Srai (_, s, _)
  | Sll (_, s) | Srl (_, s) | Sra (_, s)
  | Ssl s | Ssr s | Load (_, _, s, _)
  | Branchi (_, s, _, _) | Branchz (_, s, _) | Bbiti (_, s, _, _)
  | Jx s | Callx0 s | Callx8 s | Entry (s, _) ->
    [ s ]
  | Ret | Retw -> [ Reg.a 0 ]
  | Movi _ | L32r _ | Ssai _ | J _ | Call0 _ | Call8 _
  | Nop | Memw | Extw | Isync | Break ->
    []
  | Custom { srcs; _ } -> srcs

let branch_target = function
  | Branch2 (_, _, _, l) | Branchi (_, _, _, l) | Branchz (_, _, l)
  | Bbit (_, _, _, l) | Bbiti (_, _, _, l)
  | J l | Call0 l | Call8 l | L32r (_, l) ->
    Some l
  | Binop _ | Unop _ | Sext _ | Cmov _ | Addi _ | Addmi _ | Movi _ | Mov _
  | Extui _ | Slli _ | Srli _ | Srai _ | Sll _ | Srl _ | Sra _ | Src _
  | Ssai _ | Ssl _ | Ssr _ | Load _ | Store _
  | Jx _ | Callx0 _ | Callx8 _ | Ret | Retw | Entry _
  | Nop | Memw | Extw | Isync | Break | Custom _ ->
    None

let binop_name = function
  | Add -> "add" | Addx2 -> "addx2" | Addx4 -> "addx4" | Addx8 -> "addx8"
  | Sub -> "sub" | Subx2 -> "subx2" | Subx4 -> "subx4" | Subx8 -> "subx8"
  | And_ -> "and" | Or_ -> "or" | Xor -> "xor"
  | Min -> "min" | Max -> "max" | Minu -> "minu" | Maxu -> "maxu"
  | Mul16s -> "mul16s" | Mul16u -> "mul16u" | Mull -> "mull"

let unop_name = function
  | Abs -> "abs" | Neg -> "neg" | Nsa -> "nsa" | Nsau -> "nsau"

let cmov_name = function
  | Moveqz -> "moveqz" | Movnez -> "movnez"
  | Movltz -> "movltz" | Movgez -> "movgez"

let bcond2_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Bltu -> "bltu" | Bgeu -> "bgeu"
  | Bany -> "bany" | Bnone -> "bnone" | Ball -> "ball" | Bnall -> "bnall"

let bcondi_name = function
  | Beqi -> "beqi" | Bnei -> "bnei" | Blti -> "blti"
  | Bgei -> "bgei" | Bltui -> "bltui" | Bgeui -> "bgeui"

let bcondz_name = function
  | Beqz -> "beqz" | Bnez -> "bnez" | Bltz -> "bltz" | Bgez -> "bgez"

let load_name = function
  | L8ui -> "l8ui" | L16si -> "l16si" | L16ui -> "l16ui" | L32i -> "l32i"

let store_name = function S8i -> "s8i" | S16i -> "s16i" | S32i -> "s32i"

let mnemonic = function
  | Binop (op, _, _, _) -> binop_name op
  | Unop (op, _, _) -> unop_name op
  | Sext _ -> "sext"
  | Cmov (op, _, _, _) -> cmov_name op
  | Addi _ -> "addi"
  | Addmi _ -> "addmi"
  | Movi _ -> "movi"
  | Mov _ -> "mov"
  | Extui _ -> "extui"
  | Slli _ -> "slli"
  | Srli _ -> "srli"
  | Srai _ -> "srai"
  | Sll _ -> "sll"
  | Srl _ -> "srl"
  | Sra _ -> "sra"
  | Src _ -> "src"
  | Ssai _ -> "ssai"
  | Ssl _ -> "ssl"
  | Ssr _ -> "ssr"
  | Load (op, _, _, _) -> load_name op
  | L32r _ -> "l32r"
  | Store (op, _, _, _) -> store_name op
  | Branch2 (c, _, _, _) -> bcond2_name c
  | Branchi (c, _, _, _) -> bcondi_name c
  | Branchz (c, _, _) -> bcondz_name c
  | Bbit (set, _, _, _) -> if set then "bbs" else "bbc"
  | Bbiti (set, _, _, _) -> if set then "bbsi" else "bbci"
  | J _ -> "j"
  | Jx _ -> "jx"
  | Call0 _ -> "call0"
  | Callx0 _ -> "callx0"
  | Call8 _ -> "call8"
  | Callx8 _ -> "callx8"
  | Ret -> "ret"
  | Retw -> "retw"
  | Entry _ -> "entry"
  | Nop -> "nop"
  | Memw -> "memw"
  | Extw -> "extw"
  | Isync -> "isync"
  | Break -> "break"
  | Custom { cname; _ } -> cname

let pp ppf i =
  let r = Reg.pp in
  match i with
  | Binop (_, d, s, t) | Cmov (_, d, s, t) | Src (d, s, t) ->
    Format.fprintf ppf "%s %a, %a, %a" (mnemonic i) r d r s r t
  | Unop (_, d, s) | Mov (d, s) | Sll (d, s) | Srl (d, s) | Sra (d, s) ->
    Format.fprintf ppf "%s %a, %a" (mnemonic i) r d r s
  | Sext (d, s, b) -> Format.fprintf ppf "sext %a, %a, %d" r d r s b
  | Addi (d, s, n) | Addmi (d, s, n)
  | Slli (d, s, n) | Srli (d, s, n) | Srai (d, s, n) ->
    Format.fprintf ppf "%s %a, %a, %d" (mnemonic i) r d r s n
  | Movi (d, n) -> Format.fprintf ppf "movi %a, %d" r d n
  | Extui (d, s, sh, w) ->
    Format.fprintf ppf "extui %a, %a, %d, %d" r d r s sh w
  | Ssai n -> Format.fprintf ppf "ssai %d" n
  | Ssl s | Ssr s -> Format.fprintf ppf "%s %a" (mnemonic i) r s
  | Load (_, d, b, off) ->
    Format.fprintf ppf "%s %a, %a, %d" (mnemonic i) r d r b off
  | L32r (d, l) -> Format.fprintf ppf "l32r %a, %s" r d l
  | Store (_, v, b, off) ->
    Format.fprintf ppf "%s %a, %a, %d" (mnemonic i) r v r b off
  | Branch2 (_, s, t, l) | Bbit (_, s, t, l) ->
    Format.fprintf ppf "%s %a, %a, %s" (mnemonic i) r s r t l
  | Branchi (_, s, n, l) | Bbiti (_, s, n, l) ->
    Format.fprintf ppf "%s %a, %d, %s" (mnemonic i) r s n l
  | Branchz (_, s, l) -> Format.fprintf ppf "%s %a, %s" (mnemonic i) r s l
  | J l | Call0 l | Call8 l -> Format.fprintf ppf "%s %s" (mnemonic i) l
  | Jx s | Callx0 s | Callx8 s ->
    Format.fprintf ppf "%s %a" (mnemonic i) r s
  | Ret | Retw | Nop | Memw | Extw | Isync | Break ->
    Format.fprintf ppf "%s" (mnemonic i)
  | Entry (sp, n) -> Format.fprintf ppf "entry %a, %d" r sp n
  | Custom { cname; dst; srcs; cimm } ->
    let args =
      (match dst with Some d -> [ Reg.to_string d ] | None -> [])
      @ List.map Reg.to_string srcs
      @ (match cimm with Some n -> [ string_of_int n ] | None -> [])
    in
    Format.fprintf ppf "%s %s" cname (String.concat ", " args)

let to_string i = Format.asprintf "%a" pp i

let pp_clazz ppf c =
  let s =
    match c with
    | Arith_class -> "arith"
    | Load_class -> "load"
    | Store_class -> "store"
    | Jump_class -> "jump"
    | Branch_class -> "branch"
    | Custom_class -> "custom"
  in
  Format.pp_print_string ppf s

let all_binops =
  [ Add; Addx2; Addx4; Addx8; Sub; Subx2; Subx4; Subx8; And_; Or_; Xor;
    Min; Max; Minu; Maxu; Mul16s; Mul16u; Mull ]

let all_unops = [ Abs; Neg; Nsa; Nsau ]

let all_cmovs = [ Moveqz; Movnez; Movltz; Movgez ]

let all_bcond2 = [ Beq; Bne; Blt; Bge; Bltu; Bgeu; Bany; Bnone; Ball; Bnall ]

let all_bcondi = [ Beqi; Bnei; Blti; Bgei; Bltui; Bgeui ]

let all_bcondz = [ Beqz; Bnez; Bltz; Bgez ]

(* binops + unops + sext + cmovs + imm-arith (addi addmi movi mov extui)
   + shifts (slli srli srai sll srl sra src ssai ssl ssr)
   + loads (4 + l32r) + stores (3)
   + branches (10 + 6 + 4 + bbc/bbs + bbci/bbsi)
   + jumps (j jx call0 callx0 call8 callx8 ret retw entry)
   + misc (nop memw extw isync break) *)
let opcode_count =
  List.length all_binops + List.length all_unops + 1
  + List.length all_cmovs + 5 + 10 + 5 + 3
  + List.length all_bcond2 + List.length all_bcondi
  + List.length all_bcondz + 4 + 9 + 5
