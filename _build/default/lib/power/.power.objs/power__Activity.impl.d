lib/power/activity.ml:
