lib/regress/matrix.ml: Array Format
