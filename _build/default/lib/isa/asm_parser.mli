(** Parser for textual assembly source.

    Accepts one statement per line:
    - [label:] — label definition (may share a line with an instruction);
    - [mnemonic op1, op2, ...] — base instructions, operands being
      registers ([a0]..[a15]), signed integers (decimal or [0x] hex) and
      label names;
    - [tie.NAME rd, rs, ...[, imm]] — custom instructions: the first
      register operand is the destination, the rest are sources, and a
      final integer is the immediate;
    - directives: [.lit name value], [.words name v ...],
      [.bytes name v ...], [.bytes_at name addr v ...];
    - comments start with [#] or [;] and run to end of line.

    The parser is the inverse of [Instr.pp] for base instructions, which
    the test suite exploits as a round-trip property. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : name:string -> string -> Program.t

val parse_line : int -> string -> Program.item list
(** Parse one source line (used by the tests); the [int] is the line
    number for error reporting.  Directive lines are rejected here. *)
