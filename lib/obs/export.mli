(** OpenMetrics/Prometheus text exposition of the {!Metrics} registry.

    Renders a metrics {!Metrics.snapshot} (by default: the live
    registry, captured now) as the OpenMetrics text format — [# TYPE] /
    [# HELP] headers once per metric family, one sample line per
    instrument, terminated by [# EOF] — so a long-lived serving process
    can answer a scrape, and a CI run can archive a machine-readable
    counter dump next to its trace.

    Conventions: counters whose registered name carries the [_total]
    suffix expose the family without it (OpenMetrics requires the family
    name bare and the sample name suffixed); histograms expose
    [_bucket{le="..."}] (cumulative, with the implicit [+Inf] bucket),
    [_sum] and [_count] samples.

    Delta scraping: capture a {!Metrics.snapshot} at the start of a
    window, another at the end, and render
    [Metrics.snapshot_diff later earlier] — counters and histograms
    then show only the window's activity. *)

val to_openmetrics : ?snapshot:Metrics.snapshot -> unit -> string
(** The exposition document.  [snapshot] defaults to
    [Metrics.snapshot ()] (the live registry). *)

val save : ?snapshot:Metrics.snapshot -> string -> unit
(** Write {!to_openmetrics} to a file. *)
